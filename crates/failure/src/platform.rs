//! Platform-level failure processes: the superposition of `p` independent
//! per-processor failure streams (paper §2).
//!
//! For Exponential per-processor laws the superposition is again Exponential
//! with rate `λ = p·λ_proc`, which is the fact the paper's analysis relies on.
//! For Weibull or log-normal laws the superposition has no closed form; the
//! [`PlatformFailureProcess`] here realises it event by event, which is what
//! the §6 extension needs (and what experiment E7 quantifies).

use crate::distribution::{DistributionKind, FailureDistribution};
use crate::error::FailureModelError;
use crate::exponential::Exponential;
use crate::rng::Pcg64;

/// Index of a processor inside a platform (`0..p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProcessorId(pub usize);

impl std::fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// What happens to processor clocks when a failure is handled.
///
/// * [`RejuvenationPolicy::FailedOnly`] — only the failed processor restarts
///   its lifetime distribution; the others keep ageing. This is the realistic
///   model the authors argue for in their companion SC'11 paper.
/// * [`RejuvenationPolicy::AllProcessors`] — every processor is rejuvenated on
///   each failure (and each checkpoint). This is the *unstated* assumption
///   behind the Bouguerra et al. formula that §3 calls inaccurate; we keep it
///   as a switchable policy so experiments can expose the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RejuvenationPolicy {
    /// Only the processor that failed restarts its clock.
    #[default]
    FailedOnly,
    /// All processors restart their clocks after every failure.
    AllProcessors,
}

/// A next platform-level failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformFailure {
    /// Absolute time of the failure (seconds since the start of the process).
    pub time: f64,
    /// The processor that failed.
    pub processor: ProcessorId,
}

/// The superposition of `p` i.i.d. per-processor failure processes.
///
/// The process tracks one "next failure" candidate per processor and exposes
/// the minimum. The caller advances logical time by consuming failures with
/// [`PlatformFailureProcess::next_failure`] and, when a failure has been
/// repaired, calls [`PlatformFailureProcess::record_repair`] so the failed
/// processor's clock restarts at the repair time.
///
/// # Example
///
/// ```rust
/// use ckpt_failure::{Exponential, PlatformFailureProcess};
///
/// let proc_law = Exponential::from_mtbf(86_400.0)?; // 1-day per-processor MTBF
/// let mut platform = PlatformFailureProcess::homogeneous(64, proc_law, 42)?;
/// let first = platform.next_failure();
/// assert!(first.time > 0.0);
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
pub struct PlatformFailureProcess {
    laws: Vec<Box<dyn FailureDistribution>>,
    rngs: Vec<Pcg64>,
    /// Absolute time at which each processor's current lifetime started.
    birth: Vec<f64>,
    /// Absolute time of each processor's next failure.
    next: Vec<f64>,
    policy: RejuvenationPolicy,
}

impl std::fmt::Debug for PlatformFailureProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformFailureProcess")
            .field("processors", &self.laws.len())
            .field("policy", &self.policy)
            .field("next", &self.next)
            .finish()
    }
}

impl PlatformFailureProcess {
    /// Builds a platform of `p` processors all following copies of `law`,
    /// with per-processor random sub-streams derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyPlatform`] if `p == 0`.
    pub fn homogeneous<D>(p: usize, law: D, seed: u64) -> Result<Self, FailureModelError>
    where
        D: FailureDistribution + Clone + 'static,
    {
        if p == 0 {
            return Err(FailureModelError::EmptyPlatform);
        }
        let laws: Vec<Box<dyn FailureDistribution>> =
            (0..p).map(|_| Box::new(law.clone()) as Box<dyn FailureDistribution>).collect();
        Self::heterogeneous(laws, seed)
    }

    /// Builds a platform from one (possibly different) law per processor.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyPlatform`] if `laws` is empty.
    pub fn heterogeneous(
        laws: Vec<Box<dyn FailureDistribution>>,
        seed: u64,
    ) -> Result<Self, FailureModelError> {
        if laws.is_empty() {
            return Err(FailureModelError::EmptyPlatform);
        }
        let root = Pcg64::seed_from_u64(seed);
        let mut rngs: Vec<Pcg64> = (0..laws.len()).map(|i| root.derive(i as u64)).collect();
        let next: Vec<f64> =
            laws.iter().zip(rngs.iter_mut()).map(|(law, rng)| law.sample(rng)).collect();
        Ok(PlatformFailureProcess {
            birth: vec![0.0; laws.len()],
            laws,
            rngs,
            next,
            policy: RejuvenationPolicy::FailedOnly,
        })
    }

    /// Sets the rejuvenation policy (builder style).
    pub fn with_policy(mut self, policy: RejuvenationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The number of processors in the platform.
    pub fn processor_count(&self) -> usize {
        self.laws.len()
    }

    /// The rejuvenation policy in force.
    pub fn policy(&self) -> RejuvenationPolicy {
        self.policy
    }

    /// Returns (without consuming it) the next platform-level failure.
    pub fn peek_failure(&self) -> PlatformFailure {
        let (idx, &time) = self
            .next
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("failure times are never NaN"))
            .expect("platform is never empty");
        PlatformFailure { time, processor: ProcessorId(idx) }
    }

    /// Consumes and returns the next platform-level failure, restarting the
    /// failed processor's clock at the failure instant (repairs can be
    /// registered later with [`record_repair`](Self::record_repair)).
    pub fn next_failure(&mut self) -> PlatformFailure {
        let failure = self.peek_failure();
        let idx = failure.processor.0;
        match self.policy {
            RejuvenationPolicy::FailedOnly => {
                self.restart_processor(idx, failure.time);
            }
            RejuvenationPolicy::AllProcessors => {
                for i in 0..self.laws.len() {
                    self.restart_processor(i, failure.time);
                }
            }
        }
        failure
    }

    /// Registers that the platform finished repairing (downtime + recovery) at
    /// absolute time `repair_time`; the failed processor's lifetime restarts
    /// from that instant rather than from the failure instant.
    ///
    /// Failures whose candidate time falls before `repair_time` on *other*
    /// processors are left untouched: the paper's model allows failures during
    /// recovery (they will simply be observed by the caller).
    pub fn record_repair(&mut self, processor: ProcessorId, repair_time: f64) {
        let idx = processor.0;
        assert!(idx < self.laws.len(), "unknown processor {processor}");
        if self.next[idx] < repair_time {
            self.restart_processor(idx, repair_time);
        }
    }

    /// Draws the time of the next failure strictly after `after`, consuming
    /// failures as needed. Convenience wrapper used by segment-based
    /// simulators that only care about the platform-level stream.
    pub fn next_failure_after(&mut self, after: f64) -> PlatformFailure {
        loop {
            let f = self.next_failure();
            if f.time > after {
                return f;
            }
        }
    }

    /// True when every per-processor law is Exponential, in which case the
    /// platform process is itself Exponential with the summed rate.
    pub fn is_memoryless(&self) -> bool {
        self.laws.iter().all(|l| l.kind() == DistributionKind::Exponential)
    }

    /// The total hazard rate at time 0; for an all-Exponential platform this
    /// is the platform rate `λ = Σ λ_i = p·λ_proc`.
    pub fn aggregate_rate(&self) -> f64 {
        self.laws.iter().map(|l| l.hazard(0.0)).sum()
    }

    /// The equivalent platform-level Exponential law, if the platform is
    /// memoryless.
    pub fn equivalent_exponential(&self) -> Option<Exponential> {
        if self.is_memoryless() {
            Exponential::new(self.aggregate_rate()).ok()
        } else {
            None
        }
    }

    fn restart_processor(&mut self, idx: usize, now: f64) {
        self.birth[idx] = now;
        let lifetime = self.laws[idx].sample(&mut self.rngs[idx]);
        self.next[idx] = now + lifetime;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weibull::Weibull;

    #[test]
    fn homogeneous_requires_processors() {
        let law = Exponential::new(0.001).unwrap();
        assert!(matches!(
            PlatformFailureProcess::homogeneous(0, law, 1),
            Err(FailureModelError::EmptyPlatform)
        ));
    }

    #[test]
    fn failures_are_strictly_increasing_in_time() {
        let law = Exponential::from_mtbf(100.0).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(8, law, 7).unwrap();
        let mut last = 0.0;
        for _ in 0..1000 {
            let f = plat.next_failure();
            assert!(f.time >= last, "time went backwards");
            assert!(f.processor.0 < 8);
            last = f.time;
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let law = Exponential::from_mtbf(100.0).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(4, law, 3).unwrap();
        let a = plat.peek_failure();
        let b = plat.peek_failure();
        assert_eq!(a, b);
        let c = plat.next_failure();
        assert_eq!(a, c);
        let d = plat.peek_failure();
        assert!(d.time >= c.time);
    }

    #[test]
    fn exponential_platform_is_memoryless_with_summed_rate() {
        let law = Exponential::new(0.002).unwrap();
        let plat = PlatformFailureProcess::homogeneous(10, law, 11).unwrap();
        assert!(plat.is_memoryless());
        assert!((plat.aggregate_rate() - 0.02).abs() < 1e-12);
        let equiv = plat.equivalent_exponential().unwrap();
        assert!((equiv.rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn weibull_platform_is_not_memoryless() {
        let law = Weibull::new(0.7, 1000.0).unwrap();
        let plat = PlatformFailureProcess::homogeneous(4, law, 11).unwrap();
        assert!(!plat.is_memoryless());
        assert!(plat.equivalent_exponential().is_none());
    }

    #[test]
    fn superposed_exponential_interarrival_matches_platform_rate() {
        // Empirically check that the superposition of p Exp(λ_proc) streams has
        // mean inter-arrival 1/(p·λ_proc) — the §2 identity.
        let p = 16;
        let mtbf_proc = 1000.0;
        let law = Exponential::from_mtbf(mtbf_proc).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(p, law, 1234).unwrap();
        let n = 40_000;
        let mut last = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = plat.next_failure();
            sum += f.time - last;
            last = f.time;
        }
        let mean = sum / n as f64;
        let expected = mtbf_proc / p as f64;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean inter-arrival {mean}, expected {expected}"
        );
    }

    #[test]
    fn record_repair_pushes_failure_past_repair_time() {
        let law = Exponential::from_mtbf(10.0).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(1, law, 5).unwrap();
        let f = plat.next_failure();
        // Repair completes 100 s after the failure; the next failure of that
        // processor must be after the repair completes.
        let repair_time = f.time + 100.0;
        plat.record_repair(f.processor, repair_time);
        let next = plat.peek_failure();
        assert!(next.time >= repair_time);
    }

    #[test]
    fn next_failure_after_skips_earlier_failures() {
        let law = Exponential::from_mtbf(50.0).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(4, law, 9).unwrap();
        let f = plat.next_failure_after(1000.0);
        assert!(f.time > 1000.0);
    }

    #[test]
    fn all_processor_rejuvenation_restarts_everyone() {
        let law = Weibull::new(0.5, 100.0).unwrap();
        let mut plat = PlatformFailureProcess::homogeneous(3, law, 21)
            .unwrap()
            .with_policy(RejuvenationPolicy::AllProcessors);
        assert_eq!(plat.policy(), RejuvenationPolicy::AllProcessors);
        let before: Vec<f64> = plat.next.clone();
        let f = plat.next_failure();
        // Every processor's next-failure candidate is now at or after the failure time.
        for (i, &t) in plat.next.iter().enumerate() {
            assert!(t >= f.time, "processor {i} kept a stale candidate ({t} < {})", f.time);
        }
        // And at least one non-failed processor changed its candidate.
        let changed = plat
            .next
            .iter()
            .zip(before.iter())
            .enumerate()
            .filter(|(i, _)| *i != f.processor.0)
            .any(|(_, (a, b))| (a - b).abs() > 1e-12);
        assert!(changed);
    }

    #[test]
    fn deterministic_given_seed() {
        let law = Exponential::from_mtbf(123.0).unwrap();
        let mut a = PlatformFailureProcess::homogeneous(8, law, 99).unwrap();
        let law = Exponential::from_mtbf(123.0).unwrap();
        let mut b = PlatformFailureProcess::homogeneous(8, law, 99).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_failure(), b.next_failure());
        }
    }

    #[test]
    fn debug_output_is_nonempty() {
        let law = Exponential::new(1.0).unwrap();
        let plat = PlatformFailureProcess::homogeneous(2, law, 1).unwrap();
        assert!(!format!("{plat:?}").is_empty());
    }

    mod properties {
        use super::*;
        use crate::lognormal::LogNormal;
        use proptest::prelude::*;

        /// A platform mixing the three law families, sized and seeded by the
        /// strategy inputs.
        fn mixed_platform(p: usize, mtbf: f64, seed: u64) -> PlatformFailureProcess {
            let laws: Vec<Box<dyn crate::FailureDistribution>> = (0..p)
                .map(|i| match i % 3 {
                    0 => Box::new(Exponential::from_mtbf(mtbf).unwrap())
                        as Box<dyn crate::FailureDistribution>,
                    1 => Box::new(Weibull::new(0.8, mtbf).unwrap()),
                    _ => Box::new(LogNormal::with_mean(mtbf, 1.0).unwrap()),
                })
                .collect();
            PlatformFailureProcess::heterogeneous(laws, seed).unwrap()
        }

        proptest! {
            #[test]
            fn prop_failure_times_are_non_decreasing(
                p in 1usize..9,
                mtbf in 1.0f64..1e4,
                seed in any::<u64>(),
            ) {
                let mut plat = mixed_platform(p, mtbf, seed);
                let mut last = 0.0;
                for _ in 0..64 {
                    let f = plat.next_failure();
                    prop_assert!(f.time >= last, "time went backwards: {} < {last}", f.time);
                    prop_assert!(f.processor.0 < p);
                    last = f.time;
                }
            }

            #[test]
            fn prop_next_failure_after_is_strictly_later(
                p in 1usize..9,
                mtbf in 1.0f64..1e4,
                seed in any::<u64>(),
                after in 0.0f64..1e5,
            ) {
                let mut plat = mixed_platform(p, mtbf, seed);
                let f = plat.next_failure_after(after);
                prop_assert!(f.time > after);
            }

            #[test]
            fn prop_record_repair_shifts_only_the_repaired_processor(
                p in 2usize..9,
                mtbf in 1.0f64..1e4,
                seed in any::<u64>(),
                delay in 0.0f64..1e4,
            ) {
                let mut plat = mixed_platform(p, mtbf, seed);
                let failure = plat.next_failure();
                let before = plat.next.clone();
                let repair_time = failure.time + delay;
                plat.record_repair(failure.processor, repair_time);
                for (i, (&now, &was)) in plat.next.iter().zip(before.iter()).enumerate() {
                    if i == failure.processor.0 {
                        prop_assert!(
                            now >= repair_time,
                            "repaired processor {i} still fails at {now} < {repair_time}"
                        );
                    } else {
                        prop_assert!(now == was, "repair perturbed processor {i}");
                    }
                }
            }

            #[test]
            fn prop_record_repair_in_the_past_is_a_no_op(
                p in 1usize..9,
                mtbf in 1.0f64..1e4,
                seed in any::<u64>(),
            ) {
                let mut plat = mixed_platform(p, mtbf, seed);
                // Candidates are all in the future of t = 0, so a repair
                // completing at 0 must leave every clock untouched.
                let before = plat.next.clone();
                plat.record_repair(ProcessorId(0), 0.0);
                prop_assert_eq!(&plat.next, &before);
            }

            #[test]
            fn prop_equivalent_exponential_agrees_with_aggregate_rate(
                r1 in 1e-6f64..1e2,
                r2 in 1e-6f64..1e2,
                r3 in 1e-6f64..1e2,
                n in 1usize..4,
            ) {
                let rates = &[r1, r2, r3][..n];
                let laws: Vec<Box<dyn crate::FailureDistribution>> = rates
                    .iter()
                    .map(|&r| Box::new(Exponential::new(r).unwrap())
                        as Box<dyn crate::FailureDistribution>)
                    .collect();
                let plat = PlatformFailureProcess::heterogeneous(laws, 1).unwrap();
                prop_assert!(plat.is_memoryless());
                let total: f64 = rates.iter().sum();
                let aggregate = plat.aggregate_rate();
                prop_assert!((aggregate - total).abs() <= 1e-9 * total.max(1.0));
                let equiv = plat.equivalent_exponential().expect("memoryless platform");
                prop_assert_eq!(equiv.rate(), aggregate);
            }

            #[test]
            fn prop_non_memoryless_platforms_have_no_equivalent_exponential(
                mtbf in 1.0f64..1e4,
                p in 1usize..6,
            ) {
                let law = Weibull::new(0.7, mtbf).unwrap();
                let plat = PlatformFailureProcess::homogeneous(p, law, 3).unwrap();
                prop_assert!(!plat.is_memoryless());
                prop_assert!(plat.equivalent_exponential().is_none());
            }
        }
    }
}

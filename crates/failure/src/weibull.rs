//! The Weibull failure law — used by the §6 extension to non-memoryless
//! failures, and the law most commonly fitted to real HPC failure logs
//! (Schroeder & Gibson, Heien et al., cited by the paper).

use crate::distribution::{DistributionKind, FailureDistribution};
use crate::error::{ensure_positive, FailureModelError};
use crate::math::gamma;
use crate::rng::RandomSource;

/// Weibull distribution with shape `k` and scale `η` (both > 0).
///
/// * `k < 1`: decreasing hazard rate ("infant mortality"), the regime observed
///   in production failure logs (typically `k ∈ [0.5, 0.8]`);
/// * `k = 1`: reduces exactly to `Exponential(1/η)`;
/// * `k > 1`: increasing hazard rate (ageing).
///
/// # Example
///
/// ```rust
/// use ckpt_failure::{Weibull, FailureDistribution, DistributionKind};
///
/// let w = Weibull::new(0.7, 10_000.0)?;
/// assert_eq!(w.kind(), DistributionKind::Weibull);
/// // Decreasing hazard: early failures are more likely than late ones.
/// assert!(w.hazard(10.0) > w.hazard(10_000.0));
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull law with shape `k > 0` and scale `η > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is non-positive or not finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, FailureModelError> {
        Ok(Weibull {
            shape: ensure_positive("shape", shape)?,
            scale: ensure_positive("scale", scale)?,
        })
    }

    /// Creates a Weibull law with shape `k` whose **mean** equals `mean`.
    ///
    /// This is the conventional way of comparing against an Exponential law
    /// with the same MTBF: the scale is set to `mean / Γ(1 + 1/k)`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is non-positive or not finite.
    pub fn with_mean(shape: f64, mean: f64) -> Result<Self, FailureModelError> {
        let shape = ensure_positive("shape", shape)?;
        let mean = ensure_positive("mean", mean)?;
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Weibull::new(shape, scale)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `η`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl FailureDistribution for Weibull {
    fn kind(&self) -> DistributionKind {
        DistributionKind::Weibull
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        // Inverse transform: η · (−ln U)^{1/k}.
        let u = rng.next_open_f64();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // The density at zero is finite only for k >= 1.
            return if self.shape > 1.0 {
                0.0
            } else if (self.shape - 1.0).abs() < f64::EPSILON {
                1.0 / self.scale
            } else {
                f64::INFINITY
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::rng::Pcg64;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Weibull::new(0.7, 100.0).is_ok());
        assert!(Weibull::new(0.0, 100.0).is_err());
        assert!(Weibull::new(0.7, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_matches_exponential() {
        let w = Weibull::new(1.0, 100.0).unwrap();
        let e = Exponential::new(0.01).unwrap();
        for &x in &[0.0, 1.0, 50.0, 200.0, 1000.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12, "cdf mismatch at {x}");
            assert!((w.survival(x) - e.survival(x)).abs() < 1e-12);
        }
        assert!((w.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn with_mean_hits_requested_mean() {
        for &k in &[0.5, 0.7, 1.0, 1.5, 3.0] {
            let w = Weibull::with_mean(k, 5000.0).unwrap();
            assert!((w.mean() - 5000.0).abs() < 1e-6, "k={k}, mean={}", w.mean());
        }
    }

    #[test]
    fn hazard_decreases_for_shape_below_one() {
        let w = Weibull::new(0.6, 1000.0).unwrap();
        let h1 = w.hazard(10.0);
        let h2 = w.hazard(100.0);
        let h3 = w.hazard(1000.0);
        assert!(h1 > h2 && h2 > h3);
    }

    #[test]
    fn hazard_increases_for_shape_above_one() {
        let w = Weibull::new(2.0, 1000.0).unwrap();
        assert!(w.hazard(10.0) < w.hazard(100.0));
        assert!(w.hazard(100.0) < w.hazard(1000.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(0.7, 500.0).unwrap();
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = w.quantile(p);
            assert!((w.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_mean_converges() {
        let w = Weibull::with_mean(0.7, 200.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(2024);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 4.0, "sample mean = {mean}");
    }

    #[test]
    fn conditional_survival_is_not_memoryless_for_low_shape() {
        let w = Weibull::new(0.5, 1000.0).unwrap();
        // After surviving a long time, the remaining life gets *longer*
        // (decreasing hazard): conditional survival exceeds unconditional.
        let unconditional = w.survival(100.0);
        let conditional = w.conditional_survival(5000.0, 100.0);
        assert!(conditional > unconditional);
    }

    #[test]
    fn sample_remaining_is_consistent_with_conditional_survival() {
        let w = Weibull::new(0.7, 1000.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(5);
        let elapsed = 2000.0;
        let n = 50_000;
        let threshold = 500.0;
        let survived = (0..n).filter(|_| w.sample_remaining(elapsed, &mut rng) > threshold).count()
            as f64
            / n as f64;
        let expected = w.conditional_survival(elapsed, threshold);
        assert!((survived - expected).abs() < 0.01, "empirical {survived} vs {expected}");
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(k in 0.3f64..4.0, scale in 1.0f64..1e5, a in 0.0f64..1e5, b in 0.0f64..1e5) {
            let w = Weibull::new(k, scale).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(w.cdf(lo) <= w.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_samples_non_negative(seed in any::<u64>(), k in 0.3f64..4.0, scale in 1.0f64..1e4) {
            let w = Weibull::new(k, scale).unwrap();
            let mut rng = Pcg64::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert!(w.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn prop_quantile_roundtrip(k in 0.3f64..4.0, scale in 1.0f64..1e4, p in 1e-4f64..0.9999) {
            let w = Weibull::new(k, scale).unwrap();
            prop_assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-7);
        }
    }
}

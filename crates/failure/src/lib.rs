//! Failure-model substrate for checkpoint scheduling of computational workflows.
//!
//! This crate provides everything the scheduler and the simulator need to talk
//! about *when processors fail*:
//!
//! * a small, fully deterministic pseudo-random number generator
//!   ([`rng::Pcg64`], [`rng::SplitMix64`]) so that the whole library is
//!   reproducible and does not depend on external RNG crates;
//! * the [`FailureDistribution`] trait together with the three inter-arrival
//!   laws discussed in the paper and its extensions: [`Exponential`]
//!   (the paper's main model), [`Weibull`] and [`LogNormal`]
//!   (the §6 extension to non-memoryless failures), plus composition helpers
//!   ([`Shifted`], [`Mixture`]);
//! * the superposition of `p` independent per-processor failure processes into
//!   a single platform-level process ([`platform::PlatformFailureProcess`]),
//!   which for Exponential laws collapses to `Exp(p·λ_proc)` exactly as §2 of
//!   the paper states;
//! * synthetic failure traces ([`trace::FailureTrace`]) that can be recorded,
//!   replayed and generated — our substitute for the production failure logs
//!   (Failure Trace Archive) cited by the paper for the general-distribution
//!   extension.
//!
//! # Example
//!
//! ```rust
//! use ckpt_failure::{Exponential, FailureDistribution, rng::Pcg64};
//!
//! // Platform MTBF of 10 hours expressed in seconds.
//! let exp = Exponential::from_mtbf(36_000.0).unwrap();
//! let mut rng = Pcg64::seed_from_u64(42);
//! let inter_arrival = exp.sample(&mut rng);
//! assert!(inter_arrival > 0.0);
//! assert!((exp.mean() - 36_000.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod distribution;
pub mod error;
pub mod exponential;
pub mod fitting;
pub mod lognormal;
pub mod math;
pub mod mixture;
pub mod platform;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod weibull;

pub use cluster::{ClusterFailureInjector, RepairModel, ShockConfig};
pub use distribution::{DistributionKind, FailureDistribution};
pub use error::FailureModelError;
pub use exponential::Exponential;
pub use lognormal::LogNormal;
pub use mixture::{Mixture, Shifted};
pub use platform::{PlatformFailure, PlatformFailureProcess, ProcessorId, RejuvenationPolicy};
pub use rng::{Pcg64, RandomSource, SplitMix64};
pub use trace::{FailureEvent, FailureTrace, TraceGenerator, TraceReplay};
pub use weibull::Weibull;

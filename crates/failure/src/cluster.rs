//! Fault injection for multi-machine clusters: correlated failure bursts and
//! explicit repair intervals on top of per-machine failure processes.
//!
//! The paper plans checkpoints for one workflow on one failure-prone machine;
//! the cluster tier (`ckpt-cluster`) runs many jobs on a *pool* of machines
//! whose failures are **correlated** (a rack-level power event or network
//! partition fells several machines within a short window) and whose repairs
//! **take time** (a machine is unavailable while repairing rather than
//! instantly rejuvenated). [`ClusterFailureInjector`] supplies both:
//!
//! * each machine owns a [`PlatformFailureProcess`] — so all the per-processor
//!   heterogeneity and the [`Mixture`](crate::Mixture)/[`Shifted`](crate::Shifted)
//!   law compositions of this crate carry over unchanged;
//! * an optional shared **shock process** ([`ShockConfig`]) injects correlated
//!   bursts: shocks arrive as a Poisson process, each shock independently
//!   strikes each machine with probability `fan_out`, and a struck machine
//!   fails at the shock instant plus a uniform offset in `[0, burst_width]`.
//!   The per-shock randomness always draws the *same number* of variates per
//!   machine, so the set of struck machines is identical across burst widths
//!   for a fixed seed — experiments can vary the burst width alone;
//! * a [`RepairModel`] turns a machine failure into a repair interval:
//!   [`begin_repair`](ClusterFailureInjector::begin_repair) samples the repair
//!   duration, silences every failure candidate of the machine that falls
//!   inside the downtime (a machine that is already down cannot fail again)
//!   and restarts its processor clocks at the repair-completion instant.
//!
//! All randomness is derived from a single seed with the same split-stream
//! discipline as `montecarlo.rs`: machine `m` uses sub-streams `2m` (failure
//! process) and `2m + 1` (repair durations), the shock process uses sub-stream
//! `u64::MAX`. Queries for different machines therefore never contend for the
//! same variates and the whole injector is bit-for-bit reproducible.

use crate::distribution::FailureDistribution;
use crate::error::{ensure_non_negative, FailureModelError};
use crate::exponential::Exponential;
use crate::platform::{PlatformFailureProcess, ProcessorId};
use crate::rng::{Pcg64, RandomSource};

/// Configuration of the shared shock process that produces correlated
/// failure bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockConfig {
    rate: f64,
    fan_out: f64,
    burst_width: f64,
}

impl ShockConfig {
    /// Builds a shock configuration.
    ///
    /// * `rate` — Poisson arrival rate of shocks (per second);
    /// * `fan_out` — probability that a given shock strikes a given machine
    ///   (1.0 = every shock fells every machine);
    /// * `burst_width` — struck machines fail at the shock instant plus an
    ///   independent uniform offset in `[0, burst_width]` (0.0 = simultaneous).
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError`] when `rate` is not strictly positive,
    /// `fan_out` is outside `[0, 1]` or `burst_width` is negative.
    pub fn new(rate: f64, fan_out: f64, burst_width: f64) -> Result<Self, FailureModelError> {
        Exponential::new(rate)?;
        if !(0.0..=1.0).contains(&fan_out) || !fan_out.is_finite() {
            return Err(FailureModelError::InvalidProbability { name: "fan_out", value: fan_out });
        }
        ensure_non_negative("burst_width", burst_width)?;
        Ok(ShockConfig { rate, fan_out, burst_width })
    }

    /// Poisson arrival rate of shocks.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Probability that a shock strikes a given machine.
    pub fn fan_out(&self) -> f64 {
        self.fan_out
    }

    /// Width of the burst window over which struck machines fail.
    pub fn burst_width(&self) -> f64 {
        self.burst_width
    }
}

/// How long a failed machine stays unavailable before it can run jobs again.
#[derive(Debug, Default)]
pub enum RepairModel {
    /// The machine is available again at the failure instant (the paper's §2
    /// model, where only the job-level downtime `D` is paid).
    #[default]
    Immediate,
    /// Every repair takes the same fixed number of seconds.
    Fixed(f64),
    /// Repair durations are drawn from a distribution (per-machine derived
    /// sub-streams keep the draws reproducible).
    Random(Box<dyn FailureDistribution>),
}

struct MachineFaults {
    platform: PlatformFailureProcess,
    repair_rng: Pcg64,
    /// Cached natural-failure candidate (already consumed from the platform),
    /// re-returnable while queries stay below it.
    pending: Option<f64>,
    /// Materialised shock-induced failure times for this machine, sorted.
    shock_hits: Vec<f64>,
}

struct ShockState {
    config: ShockConfig,
    law: Exponential,
    rng: Pcg64,
    /// Absolute time of the next not-yet-materialised shock.
    next_shock: f64,
}

/// Per-machine failure streams with correlated bursts and repair intervals.
///
/// The injector answers the same query as a
/// `FailureStream` — *"first failure of machine `m` strictly after time
/// `t`"* — but for a whole pool of machines at once, merging each machine's
/// own [`PlatformFailureProcess`] with the shared shock process. The cluster
/// engine tells the injector when a machine enters repair via
/// [`begin_repair`](Self::begin_repair).
///
/// Queries per machine must use non-decreasing `after` values (the usual
/// stream discipline); candidates beyond `after` are cached and re-returned,
/// candidates at or before `after` are skipped — a machine that was idle while
/// a shock passed does not fail retroactively.
///
/// # Example
///
/// ```rust
/// use ckpt_failure::{ClusterFailureInjector, Exponential, RepairModel, ShockConfig};
///
/// let law = Exponential::from_mtbf(50_000.0)?;
/// let mut injector = ClusterFailureInjector::homogeneous(4, law, 42)?
///     .with_shocks(ShockConfig::new(1.0 / 5_000.0, 1.0, 60.0)?)
///     .with_repair(RepairModel::Fixed(600.0))?;
/// let first = injector.next_failure_after(0, 0.0);
/// assert!(first > 0.0);
/// let back_up = injector.begin_repair(0, first);
/// assert_eq!(back_up, first + 600.0);
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
pub struct ClusterFailureInjector {
    machines: Vec<MachineFaults>,
    shocks: Option<ShockState>,
    repair: RepairModel,
    /// Dedicated sub-stream for the shock process (root stream `u64::MAX`,
    /// disjoint from every machine's `2m` / `2m + 1` sub-streams), kept here
    /// so enabling shocks never perturbs the per-machine draws.
    shock_rng: Pcg64,
}

impl std::fmt::Debug for ClusterFailureInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterFailureInjector")
            .field("machines", &self.machines.len())
            .field("shocks", &self.shocks.as_ref().map(|s| s.config))
            .field("repair", &self.repair)
            .finish()
    }
}

impl ClusterFailureInjector {
    /// Builds a pool of `machines` single-processor machines all following
    /// copies of `law`, with derived per-machine sub-streams.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyPlatform`] if `machines == 0`.
    pub fn homogeneous<D>(machines: usize, law: D, seed: u64) -> Result<Self, FailureModelError>
    where
        D: FailureDistribution + Clone + 'static,
    {
        let laws = (0..machines)
            .map(|_| vec![Box::new(law.clone()) as Box<dyn FailureDistribution>])
            .collect();
        Self::heterogeneous(laws, seed)
    }

    /// Builds a pool from one list of per-processor laws per machine (machine
    /// `m` becomes a [`PlatformFailureProcess`] over `machine_laws[m]`).
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyPlatform`] if `machine_laws` is empty
    /// or any machine has no processors.
    pub fn heterogeneous(
        machine_laws: Vec<Vec<Box<dyn FailureDistribution>>>,
        seed: u64,
    ) -> Result<Self, FailureModelError> {
        if machine_laws.is_empty() {
            return Err(FailureModelError::EmptyPlatform);
        }
        let root = Pcg64::seed_from_u64(seed);
        let machines = machine_laws
            .into_iter()
            .enumerate()
            .map(|(m, laws)| {
                let mut stream_rng = root.derive(2 * m as u64);
                let platform = PlatformFailureProcess::heterogeneous(laws, stream_rng.next_u64())?;
                Ok(MachineFaults {
                    platform,
                    repair_rng: root.derive(2 * m as u64 + 1),
                    pending: None,
                    shock_hits: Vec::new(),
                })
            })
            .collect::<Result<Vec<_>, FailureModelError>>()?;
        Ok(ClusterFailureInjector {
            machines,
            shocks: None,
            repair: RepairModel::Immediate,
            shock_rng: root.derive(u64::MAX),
        })
    }

    /// Enables the correlated shock process (builder style).
    pub fn with_shocks(mut self, config: ShockConfig) -> Self {
        let law = Exponential::new(config.rate).expect("ShockConfig validated the rate");
        let mut rng = self.shock_rng.clone();
        let next_shock = law.sample(&mut rng);
        self.shocks = Some(ShockState { config, law, rng, next_shock });
        self
    }

    /// Sets the repair model (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError`] if a [`RepairModel::Fixed`] duration is
    /// negative or non-finite.
    pub fn with_repair(mut self, repair: RepairModel) -> Result<Self, FailureModelError> {
        if let RepairModel::Fixed(d) = repair {
            ensure_non_negative("repair_duration", d)?;
        }
        self.repair = repair;
        Ok(self)
    }

    /// The number of machines in the pool.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The aggregate time-zero hazard rate of machine `machine`'s own failure
    /// process (shocks excluded) — the rate per-job checkpoint plans are
    /// computed against.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn machine_rate(&self, machine: usize) -> f64 {
        self.machines[machine].platform.aggregate_rate()
    }

    /// Effective machine-level failure rate including the shock contribution
    /// (`fan_out × shock rate`), for memoryless machine processes.
    pub fn effective_machine_rate(&self, machine: usize) -> f64 {
        let shock = self.shocks.as_ref().map_or(0.0, |s| s.config.rate * s.config.fan_out);
        self.machine_rate(machine) + shock
    }

    /// First failure of `machine` strictly after `after`, merging the
    /// machine's own process with materialised shock hits.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn next_failure_after(&mut self, machine: usize, after: f64) -> f64 {
        let natural = {
            let faults = &mut self.machines[machine];
            match faults.pending {
                Some(t) if t > after => t,
                _ => {
                    let t = faults.platform.next_failure_after(after).time;
                    faults.pending = Some(t);
                    t
                }
            }
        };
        // Lazily materialise shocks until the next one can no longer beat the
        // best candidate seen so far: a shock at time `s` only produces hits
        // at ≥ `s`, so once `next_shock > best` the answer is settled. The
        // candidate shrinks as hits land, so this touches only the shocks the
        // query can actually observe (a machine with a year-long MTBF does not
        // force a year of shocks to be drawn).
        let mut best = natural;
        if self.shocks.as_ref().is_some_and(|s| s.config.fan_out > 0.0) {
            loop {
                let faults = &mut self.machines[machine];
                let stale = faults.shock_hits.partition_point(|&h| h <= after);
                faults.shock_hits.drain(..stale);
                if let Some(&hit) = faults.shock_hits.first() {
                    best = best.min(hit);
                }
                if self.shocks.as_ref().expect("checked above").next_shock > best {
                    break;
                }
                self.materialise_one_shock();
            }
        }
        best
    }

    /// Starts repairing `machine` after it failed at time `at` and returns the
    /// absolute time at which the machine is available again.
    ///
    /// Every failure candidate of the machine inside the repair interval is
    /// silenced (a machine that is down cannot fail again) and its processor
    /// clocks restart at the repair-completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn begin_repair(&mut self, machine: usize, at: f64) -> f64 {
        let duration = match &self.repair {
            RepairModel::Immediate => 0.0,
            RepairModel::Fixed(d) => *d,
            RepairModel::Random(law) => law.sample(&mut self.machines[machine].repair_rng),
        };
        let done = at + duration;
        crate::stats::REPAIRS_TOTAL.add(1);
        let faults = &mut self.machines[machine];
        for p in 0..faults.platform.processor_count() {
            faults.platform.record_repair(ProcessorId(p), done);
        }
        // Only candidates *inside* the repair interval are silenced: a cached
        // natural-failure candidate beyond the repair completion was observed
        // while the machine was (or will be) up and must survive — dropping
        // it here would silently thin the machine's own failure process
        // whenever a shock-triggered repair resolves before it.
        faults.pending = faults.pending.filter(|&t| t > done);
        let absorbed = faults.shock_hits.partition_point(|&h| h <= done);
        faults.shock_hits.drain(..absorbed);
        done
    }

    fn materialise_one_shock(&mut self) {
        let Some(state) = self.shocks.as_mut() else { return };
        let shock_time = state.next_shock;
        crate::stats::SHOCKS_TOTAL.add(1);
        let mut hits = 0u64;
        for faults in self.machines.iter_mut() {
            // Always draw both variates so the struck-machine pattern is
            // invariant across burst widths (and the offset draw across
            // fan-outs) for a fixed seed.
            let u_hit = state.rng.next_f64();
            let u_offset = state.rng.next_f64();
            if u_hit < state.config.fan_out {
                let hit = shock_time + u_offset * state.config.burst_width;
                let pos = faults.shock_hits.partition_point(|&h| h <= hit);
                faults.shock_hits.insert(pos, hit);
                hits += 1;
            }
        }
        crate::stats::SHOCK_HITS_TOTAL.add(hits);
        state.next_shock = shock_time + state.law.sample(&mut state.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixture::Shifted;
    use crate::weibull::Weibull;

    fn law(mtbf: f64) -> Exponential {
        Exponential::from_mtbf(mtbf).unwrap()
    }

    #[test]
    fn construction_rejects_empty_pools() {
        assert!(matches!(
            ClusterFailureInjector::homogeneous(0, law(100.0), 1),
            Err(FailureModelError::EmptyPlatform)
        ));
        assert!(matches!(
            ClusterFailureInjector::heterogeneous(vec![vec![]], 1),
            Err(FailureModelError::EmptyPlatform)
        ));
    }

    #[test]
    fn shock_config_validates_parameters() {
        assert!(ShockConfig::new(0.0, 0.5, 1.0).is_err());
        assert!(ShockConfig::new(1.0, -0.1, 1.0).is_err());
        assert!(ShockConfig::new(1.0, 1.1, 1.0).is_err());
        assert!(ShockConfig::new(1.0, 0.5, -1.0).is_err());
        let cfg = ShockConfig::new(0.25, 0.5, 2.0).unwrap();
        assert_eq!((cfg.rate(), cfg.fan_out(), cfg.burst_width()), (0.25, 0.5, 2.0));
    }

    #[test]
    fn repair_model_validates_fixed_duration() {
        let inj = ClusterFailureInjector::homogeneous(1, law(100.0), 1).unwrap();
        assert!(inj.with_repair(RepairModel::Fixed(-5.0)).is_err());
    }

    #[test]
    fn deterministic_given_seed_and_query_order() {
        let build = || {
            ClusterFailureInjector::homogeneous(3, law(500.0), 77)
                .unwrap()
                .with_shocks(ShockConfig::new(1.0 / 300.0, 0.7, 20.0).unwrap())
                .with_repair(RepairModel::Random(Box::new(law(60.0))))
                .unwrap()
        };
        let mut a = build();
        let mut b = build();
        let mut clocks = [0.0f64; 3];
        for step in 0..200 {
            let m = step % 3;
            let fa = a.next_failure_after(m, clocks[m]);
            let fb = b.next_failure_after(m, clocks[m]);
            assert_eq!(fa, fb, "diverged at step {step}");
            let ra = a.begin_repair(m, fa);
            let rb = b.begin_repair(m, fb);
            assert_eq!(ra, rb);
            clocks[m] = ra;
        }
    }

    #[test]
    fn zero_fan_out_matches_shockless_pool() {
        // fan_out = 0 draws shock variates from an independent sub-stream but
        // never fells anything, so the merged stream equals the natural one.
        let mut plain = ClusterFailureInjector::homogeneous(2, law(400.0), 5).unwrap();
        let mut shocked = ClusterFailureInjector::homogeneous(2, law(400.0), 5)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 50.0, 0.0, 10.0).unwrap());
        for m in 0..2 {
            let mut after = 0.0;
            for _ in 0..100 {
                let f = plain.next_failure_after(m, after);
                assert_eq!(f, shocked.next_failure_after(m, after));
                after = f;
            }
        }
    }

    #[test]
    fn full_fan_out_zero_width_fells_all_machines_at_the_shock_instant() {
        // Machines whose own MTBF is astronomically long: the first failure of
        // every machine is the first shock, at the exact same instant.
        let mut inj = ClusterFailureInjector::homogeneous(4, law(1e12), 9)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 100.0, 1.0, 0.0).unwrap());
        let first = inj.next_failure_after(0, 0.0);
        for m in 1..4 {
            assert_eq!(inj.next_failure_after(m, 0.0), first);
        }
    }

    #[test]
    fn burst_width_staggers_but_preserves_the_struck_pattern() {
        // Same seed, different widths: the k-th shock hit of each machine
        // moves by at most the width, never by a different shock's slot.
        let width = 5.0;
        let mut narrow = ClusterFailureInjector::homogeneous(3, law(1e12), 13)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 1_000.0, 0.6, 0.0).unwrap());
        let mut wide = ClusterFailureInjector::homogeneous(3, law(1e12), 13)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 1_000.0, 0.6, width).unwrap());
        for m in 0..3 {
            let mut after_n = 0.0;
            let mut after_w = 0.0;
            for _ in 0..50 {
                let n = narrow.next_failure_after(m, after_n);
                let w = wide.next_failure_after(m, after_w);
                assert!(w >= n && w <= n + width, "hit {w} strayed from shock {n}");
                after_n = n;
                after_w = w;
            }
        }
    }

    #[test]
    fn repair_silences_failures_inside_the_downtime() {
        let mut inj = ClusterFailureInjector::homogeneous(1, law(10.0), 3)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 5.0, 1.0, 0.0).unwrap())
            .with_repair(RepairModel::Fixed(10_000.0))
            .unwrap();
        let f = inj.next_failure_after(0, 0.0);
        let done = inj.begin_repair(0, f);
        assert_eq!(done, f + 10_000.0);
        // Dozens of natural failures and shocks fall inside the repair window;
        // all must be silenced.
        assert!(inj.next_failure_after(0, done) > done);
    }

    #[test]
    fn idle_machines_skip_stale_shock_hits() {
        let mut inj = ClusterFailureInjector::homogeneous(2, law(1e12), 21)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0 / 10.0, 1.0, 0.0).unwrap());
        // Machine 0 observes (and thereby materialises) many early shocks.
        let mut after = 0.0;
        for _ in 0..20 {
            after = inj.next_failure_after(0, after);
        }
        // Machine 1 was idle the whole time: its first query far in the future
        // must skip everything at or before `after`.
        let f = inj.next_failure_after(1, after);
        assert!(f > after);
    }

    #[test]
    fn queries_are_stable_below_the_candidate() {
        let mut inj = ClusterFailureInjector::homogeneous(1, law(200.0), 31).unwrap();
        let f = inj.next_failure_after(0, 0.0);
        assert_eq!(inj.next_failure_after(0, 0.0), f);
        assert_eq!(inj.next_failure_after(0, f / 2.0), f);
    }

    #[test]
    fn heterogeneous_machines_compose_platform_laws() {
        let machine_laws: Vec<Vec<Box<dyn FailureDistribution>>> = vec![
            vec![Box::new(law(100.0)), Box::new(law(200.0))],
            vec![Box::new(Weibull::new(0.7, 300.0).unwrap())],
            vec![Box::new(Shifted::new(law(150.0), 5.0).unwrap())],
        ];
        let mut inj = ClusterFailureInjector::heterogeneous(machine_laws, 17).unwrap();
        assert_eq!(inj.machine_count(), 3);
        assert!((inj.machine_rate(0) - (1.0 / 100.0 + 1.0 / 200.0)).abs() < 1e-12);
        for m in 0..3 {
            let f = inj.next_failure_after(m, 0.0);
            assert!(f > 0.0);
        }
    }

    #[test]
    fn effective_rate_adds_the_shock_contribution() {
        let inj = ClusterFailureInjector::homogeneous(2, law(100.0), 1)
            .unwrap()
            .with_shocks(ShockConfig::new(0.02, 0.5, 1.0).unwrap());
        assert!((inj.machine_rate(0) - 0.01).abs() < 1e-12);
        assert!((inj.effective_machine_rate(0) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let inj = ClusterFailureInjector::homogeneous(2, law(100.0), 1).unwrap();
        assert!(!format!("{inj:?}").is_empty());
    }

    #[test]
    fn natural_candidate_beyond_the_repair_completion_survives() {
        // Deterministic core of the `repro_pending` regression: a dense shock
        // process fails (and immediately repairs) the machine many times
        // before its own first natural failure; the natural candidate lies
        // outside every repair interval and must still be observed.
        let mut plain = ClusterFailureInjector::homogeneous(1, law(100.0), 42).unwrap();
        let natural = plain.next_failure_after(0, 0.0);
        let mut shocked = ClusterFailureInjector::homogeneous(1, law(100.0), 42)
            .unwrap()
            .with_shocks(ShockConfig::new(1.0, 1.0, 0.0).unwrap());
        let mut t = 0.0;
        let mut observed = false;
        for _ in 0..10_000 {
            t = shocked.next_failure_after(0, t);
            if t == natural {
                observed = true;
                break;
            }
            if t > natural {
                break;
            }
            shocked.begin_repair(0, t);
        }
        assert!(observed, "natural failure at {natural} was dropped");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The `begin_repair` contract: a failure candidate is silenced only
        /// when it falls **inside** a repair interval. For every machine of a
        /// random pool under a random shock process and repair duration, the
        /// machine's first natural candidate (known from a shock-free
        /// injector on the same seed, which shares the per-machine
        /// sub-streams) must either be returned by the merged stream or lie
        /// inside one of the repair intervals the walk opened — never vanish.
        #[test]
        fn prop_no_candidate_outside_a_repair_interval_is_lost(
            seed in any::<u64>(),
            machines in 1usize..4,
            mtbf in 50.0f64..5_000.0,
            shock_gap in 1.0f64..500.0,
            fan_out in 0.1f64..1.0,
            burst_width in 0.0f64..50.0,
            repair in 0.0f64..200.0,
        ) {
            let mut plain =
                ClusterFailureInjector::homogeneous(machines, law(mtbf), seed).unwrap();
            let build = || {
                ClusterFailureInjector::homogeneous(machines, law(mtbf), seed)
                    .unwrap()
                    .with_shocks(ShockConfig::new(1.0 / shock_gap, fan_out, burst_width).unwrap())
                    .with_repair(RepairModel::Fixed(repair))
                    .unwrap()
            };
            let mut shocked = build();
            for m in 0..machines {
                let natural = plain.next_failure_after(m, 0.0);
                let mut t = 0.0;
                let mut observed = false;
                let mut absorbed = false;
                for _ in 0..2_000 {
                    let f = shocked.next_failure_after(m, t);
                    if f == natural {
                        observed = true;
                        break;
                    }
                    if f > natural {
                        break;
                    }
                    let done = shocked.begin_repair(m, f);
                    if natural <= done {
                        // The candidate fell inside this repair interval:
                        // silencing it is exactly the documented contract.
                        absorbed = true;
                        break;
                    }
                    t = done;
                }
                prop_assert!(
                    observed || absorbed,
                    "machine {m}: natural candidate {natural} was neither observed nor \
                     inside any repair interval"
                );
            }
        }
    }
}

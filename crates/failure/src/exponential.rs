//! The Exponential failure law — the paper's main model (§2, "Poisson process").

use crate::distribution::{DistributionKind, FailureDistribution};
use crate::error::{ensure_positive, FailureModelError};
use crate::rng::RandomSource;

/// Exponential distribution with rate `λ` (failures per second).
///
/// This is the law assumed by the paper's main results: per-processor failures
/// arrive with rate `λ_proc` and the platform-level process is Exponential
/// with `λ = p·λ_proc` (§2). Its memorylessness is what makes the closed-form
/// formula of Proposition 1 possible.
///
/// # Example
///
/// ```rust
/// use ckpt_failure::{Exponential, FailureDistribution};
///
/// let exp = Exponential::new(1.0 / 3600.0)?; // one failure per hour on average
/// assert!((exp.mean() - 3600.0).abs() < 1e-9);
/// assert!((exp.cdf(0.0)).abs() < 1e-12);
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an Exponential law with the given rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::NonPositiveParameter`] if `rate ≤ 0` or is
    /// not finite.
    pub fn new(rate: f64) -> Result<Self, FailureModelError> {
        Ok(Exponential { rate: ensure_positive("rate", rate)? })
    }

    /// Creates an Exponential law from its mean time between failures.
    ///
    /// # Errors
    ///
    /// Returns an error if `mtbf ≤ 0` or is not finite.
    pub fn from_mtbf(mtbf: f64) -> Result<Self, FailureModelError> {
        let mtbf = ensure_positive("mtbf", mtbf)?;
        Exponential::new(1.0 / mtbf)
    }

    /// The rate `λ` of the law.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The law of the superposition of `p` independent copies of this law:
    /// `Exp(p·λ)`.
    ///
    /// This is exactly the platform-level failure law of §2.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn superposed(&self, p: u32) -> Exponential {
        assert!(p > 0, "a platform needs at least one processor");
        Exponential { rate: self.rate * f64::from(p) }
    }
}

impl FailureDistribution for Exponential {
    fn kind(&self) -> DistributionKind {
        DistributionKind::Exponential
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        // Inverse transform: -ln(1 - U)/λ, using an open-interval uniform so
        // the logarithm is always finite.
        let u = rng.next_open_f64();
        -u.ln() / self.rate
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn hazard(&self, _x: f64) -> f64 {
        self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        -(-p).ln_1p() / self.rate
    }

    fn conditional_survival(&self, _elapsed: f64, x: f64) -> f64 {
        // Memorylessness.
        self.survival(x)
    }

    fn sample_remaining(&self, _elapsed: f64, rng: &mut dyn RandomSource) -> f64 {
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_rate() {
        assert!(Exponential::new(1.0).is_ok());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn mtbf_roundtrip() {
        let exp = Exponential::from_mtbf(500.0).unwrap();
        assert!((exp.mean() - 500.0).abs() < 1e-9);
        assert!((exp.rate() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn cdf_pdf_survival_consistency() {
        let exp = Exponential::new(0.3).unwrap();
        assert_eq!(exp.cdf(-1.0), 0.0);
        assert_eq!(exp.pdf(-1.0), 0.0);
        assert_eq!(exp.survival(-1.0), 1.0);
        assert!((exp.cdf(0.0)).abs() < 1e-12);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            assert!((exp.cdf(x) + exp.survival(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_is_constant() {
        let exp = Exponential::new(0.7).unwrap();
        for &x in &[0.0, 1.0, 10.0, 100.0] {
            assert!((exp.hazard(x) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let exp = Exponential::new(2.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            let x = exp.quantile(p);
            assert!((exp.cdf(x) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn median_is_ln2_over_rate() {
        let exp = Exponential::new(0.5).unwrap();
        let median = exp.quantile(0.5);
        assert!((median - std::f64::consts::LN_2 / 0.5).abs() < 1e-10);
    }

    #[test]
    fn sample_mean_converges_to_mtbf() {
        let exp = Exponential::from_mtbf(100.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "sample mean = {mean}");
    }

    #[test]
    fn superposition_multiplies_rate() {
        let exp = Exponential::new(0.001).unwrap();
        let plat = exp.superposed(64);
        assert!((plat.rate() - 0.064).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn superposition_rejects_zero_processors() {
        let _ = Exponential::new(1.0).unwrap().superposed(0);
    }

    #[test]
    fn sample_remaining_ignores_elapsed_time() {
        let exp = Exponential::new(0.01).unwrap();
        let mut rng_a = Pcg64::seed_from_u64(7);
        let mut rng_b = Pcg64::seed_from_u64(7);
        let fresh = exp.sample_remaining(0.0, &mut rng_a);
        let conditioned = exp.sample_remaining(1234.5, &mut rng_b);
        assert!((fresh - conditioned).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_samples_are_non_negative(seed in any::<u64>(), rate in 1e-6f64..1e3) {
            let exp = Exponential::new(rate).unwrap();
            let mut rng = Pcg64::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(exp.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn prop_cdf_is_monotone(rate in 1e-6f64..1e3, a in 0.0f64..1e4, b in 0.0f64..1e4) {
            let exp = Exponential::new(rate).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(exp.cdf(lo) <= exp.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_quantile_cdf_roundtrip(rate in 1e-4f64..1e2, p in 1e-6f64..0.999_999) {
            let exp = Exponential::new(rate).unwrap();
            let x = exp.quantile(p);
            prop_assert!((exp.cdf(x) - p).abs() < 1e-8);
        }
    }
}

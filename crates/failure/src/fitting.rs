//! Fitting failure laws to observed inter-arrival samples.
//!
//! The §6 extension (and the trace-driven experiments) need to go from a
//! failure log to a distribution: given the platform-level or per-processor
//! inter-arrival times of a [`crate::trace::FailureTrace`], estimate the
//! parameters of an Exponential, Weibull or log-normal law. The estimators
//! here are the standard closed-form / method-of-moments ones — adequate for
//! synthetic traces and for the qualitative comparisons of experiment E7.

use crate::error::FailureModelError;
use crate::exponential::Exponential;
use crate::lognormal::LogNormal;
use crate::math::gamma;
use crate::trace::FailureTrace;
use crate::weibull::Weibull;

/// Inter-arrival times (platform level) extracted from a trace.
///
/// Returns an empty vector for traces with fewer than two events.
pub fn platform_interarrivals(trace: &FailureTrace) -> Vec<f64> {
    trace.events().windows(2).map(|w| w[1].time - w[0].time).collect()
}

/// Maximum-likelihood Exponential fit: `λ = 1 / mean`.
///
/// # Errors
///
/// Returns an error if `samples` is empty or the sample mean is not strictly
/// positive.
pub fn fit_exponential(samples: &[f64]) -> Result<Exponential, FailureModelError> {
    let mean = positive_mean(samples)?;
    Exponential::from_mtbf(mean)
}

/// Method-of-moments Weibull fit.
///
/// The coefficient of variation `cv = σ/μ` of a Weibull law is a strictly
/// decreasing function of its shape `k`; we invert it by bisection on
/// `k ∈ [0.05, 50]` and then set the scale from the mean.
///
/// # Errors
///
/// Returns an error if `samples` has fewer than two elements, has a
/// non-positive mean, or zero variance (a degenerate sample cannot be fitted).
pub fn fit_weibull(samples: &[f64]) -> Result<Weibull, FailureModelError> {
    if samples.len() < 2 {
        return Err(FailureModelError::NonPositiveParameter {
            name: "sample size",
            value: samples.len() as f64,
        });
    }
    let mean = positive_mean(samples)?;
    let variance =
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    if variance <= 0.0 {
        return Err(FailureModelError::NonPositiveParameter {
            name: "sample variance",
            value: variance,
        });
    }
    let target_cv = variance.sqrt() / mean;

    // cv(k) for a Weibull law.
    let cv_of_shape = |k: f64| -> f64 {
        let g1 = gamma(1.0 + 1.0 / k);
        let g2 = gamma(1.0 + 2.0 / k);
        ((g2 - g1 * g1).max(0.0)).sqrt() / g1
    };
    let (mut lo, mut hi) = (0.05f64, 50.0f64);
    // cv is decreasing in k: cv(0.05) is huge, cv(50) is tiny.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cv_of_shape(mid) > target_cv {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let shape = 0.5 * (lo + hi);
    Weibull::with_mean(shape, mean)
}

/// Log-normal fit from the moments of `ln(x)`.
///
/// # Errors
///
/// Returns an error if `samples` has fewer than two elements or contains a
/// non-positive value.
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormal, FailureModelError> {
    if samples.len() < 2 {
        return Err(FailureModelError::NonPositiveParameter {
            name: "sample size",
            value: samples.len() as f64,
        });
    }
    if samples.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
        return Err(FailureModelError::NonPositiveParameter { name: "sample", value: -1.0 });
    }
    let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
    let mu = logs.iter().sum::<f64>() / logs.len() as f64;
    let var = logs.iter().map(|l| (l - mu).powi(2)).sum::<f64>() / (logs.len() - 1) as f64;
    let sigma = var.sqrt().max(1e-9);
    LogNormal::new(mu, sigma)
}

/// Incremental maximum-likelihood Exponential rate estimation from observed
/// inter-failure times — the online counterpart of [`fit_exponential`],
/// maintained in `O(1)` per observation so an executing policy can update
/// its estimate at every failure.
///
/// The MLE of an Exponential rate after `k` observed inter-arrival times
/// summing to `t` is `λ̂ = k / t`; [`rate`](OnlineExponentialMle::rate)
/// returns exactly the rate [`fit_exponential`] would fit to the same
/// samples (up to floating-point summation order).
///
/// # Example
///
/// ```
/// use ckpt_failure::fitting::{fit_exponential, OnlineExponentialMle};
///
/// let samples = [120.0, 340.0, 80.0, 200.0];
/// let mut online = OnlineExponentialMle::new();
/// for &s in &samples {
///     online.observe(s);
/// }
/// let batch = fit_exponential(&samples)?;
/// let rate = online.rate().expect("four observations");
/// assert!((rate - batch.rate()).abs() / batch.rate() < 1e-12);
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineExponentialMle {
    count: u64,
    total: f64,
}

impl OnlineExponentialMle {
    /// An estimator with no observations yet.
    pub fn new() -> Self {
        OnlineExponentialMle::default()
    }

    /// Records one inter-failure time. Non-finite or negative samples are
    /// ignored (a defensive guard: simulated failure streams only produce
    /// non-negative gaps).
    pub fn observe(&mut self, interarrival: f64) {
        if interarrival.is_finite() && interarrival >= 0.0 {
            self.count += 1;
            self.total += interarrival;
        }
    }

    /// The number of recorded inter-failure times.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The summed observation time of the recorded inter-failure times.
    pub fn total_time(&self) -> f64 {
        self.total
    }

    /// The maximum-likelihood rate `k / t`, or `None` before the first
    /// observation (or while the accumulated time is still zero).
    pub fn rate(&self) -> Option<f64> {
        (self.count > 0 && self.total > 0.0).then(|| self.count as f64 / self.total)
    }

    /// The maximum-likelihood mean time between failures `t / k`, or `None`
    /// before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0 && self.total > 0.0).then(|| self.total / self.count as f64)
    }
}

/// A goodness-of-fit summary: the Kolmogorov–Smirnov statistic of `samples`
/// against a candidate CDF.
pub fn ks_statistic<F>(samples: &[f64], cdf: F) -> f64
where
    F: Fn(f64) -> f64,
{
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let model = cdf(x);
            let below = i as f64 / n;
            let above = (i + 1) as f64 / n;
            (model - below).abs().max((above - model).abs())
        })
        .fold(0.0, f64::max)
}

fn positive_mean(samples: &[f64]) -> Result<f64, FailureModelError> {
    if samples.is_empty() {
        return Err(FailureModelError::NonPositiveParameter { name: "sample size", value: 0.0 });
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if !mean.is_finite() || mean <= 0.0 {
        return Err(FailureModelError::NonPositiveParameter { name: "sample mean", value: mean });
    }
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::FailureDistribution;
    use crate::rng::Pcg64;
    use crate::trace::TraceGenerator;

    fn samples_from<D: FailureDistribution>(law: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Pcg64::seed_from_u64(seed);
        (0..n).map(|_| law.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let law = Exponential::from_mtbf(1_234.0).unwrap();
        let samples = samples_from(&law, 50_000, 1);
        let fit = fit_exponential(&samples).unwrap();
        assert!((fit.mean() - 1_234.0).abs() / 1_234.0 < 0.03);
        assert!(fit_exponential(&[]).is_err());
    }

    #[test]
    fn weibull_fit_recovers_shape_and_mean() {
        for &shape in &[0.6, 1.0, 1.8] {
            let law = Weibull::with_mean(shape, 5_000.0).unwrap();
            let samples = samples_from(&law, 80_000, 7);
            let fit = fit_weibull(&samples).unwrap();
            assert!((fit.shape() - shape).abs() < 0.1, "shape {shape}: fitted {}", fit.shape());
            assert!((fit.mean() - 5_000.0).abs() / 5_000.0 < 0.05);
        }
    }

    #[test]
    fn weibull_fit_rejects_degenerate_samples() {
        assert!(fit_weibull(&[1.0]).is_err());
        assert!(fit_weibull(&[5.0, 5.0, 5.0]).is_err());
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let law = LogNormal::new(7.0, 0.8).unwrap();
        let samples = samples_from(&law, 60_000, 3);
        let fit = fit_lognormal(&samples).unwrap();
        assert!((fit.mu() - 7.0).abs() < 0.05);
        assert!((fit.sigma() - 0.8).abs() < 0.05);
        assert!(fit_lognormal(&[1.0]).is_err());
        assert!(fit_lognormal(&[1.0, -2.0, 3.0]).is_err());
    }

    #[test]
    fn ks_statistic_prefers_the_true_family() {
        let law = Weibull::with_mean(0.6, 2_000.0).unwrap();
        let samples = samples_from(&law, 20_000, 11);
        let weibull_fit = fit_weibull(&samples).unwrap();
        let expo_fit = fit_exponential(&samples).unwrap();
        let ks_weibull = ks_statistic(&samples, |x| weibull_fit.cdf(x));
        let ks_expo = ks_statistic(&samples, |x| expo_fit.cdf(x));
        assert!(
            ks_weibull < ks_expo,
            "weibull KS {ks_weibull} should beat exponential KS {ks_expo}"
        );
    }

    #[test]
    fn ks_statistic_of_empty_sample_is_zero() {
        assert_eq!(ks_statistic(&[], |_| 0.5), 0.0);
    }

    #[test]
    fn online_mle_matches_batch_fit() {
        let law = Exponential::from_mtbf(640.0).unwrap();
        let samples = samples_from(&law, 5_000, 21);
        let mut online = OnlineExponentialMle::new();
        for &s in &samples {
            online.observe(s);
        }
        let batch = fit_exponential(&samples).unwrap();
        let rate = online.rate().unwrap();
        assert!((rate - batch.rate()).abs() / batch.rate() < 1e-12);
        assert!((online.mean().unwrap() - batch.mean()).abs() / batch.mean() < 1e-12);
        assert_eq!(online.count(), samples.len() as u64);
    }

    #[test]
    fn online_mle_guards_degenerate_inputs() {
        let mut online = OnlineExponentialMle::new();
        assert_eq!(online.rate(), None);
        assert_eq!(online.mean(), None);
        online.observe(f64::NAN);
        online.observe(-5.0);
        online.observe(f64::INFINITY);
        assert_eq!(online.count(), 0);
        // A single zero gap keeps the rate undefined rather than infinite.
        online.observe(0.0);
        assert_eq!(online.count(), 1);
        assert_eq!(online.rate(), None);
        online.observe(100.0);
        assert!((online.rate().unwrap() - 2.0 / 100.0).abs() < 1e-15);
    }

    #[test]
    fn trace_interarrivals_feed_the_fitters() {
        let gen = TraceGenerator::new(8, 5).unwrap();
        let law = Exponential::from_mtbf(1_000.0).unwrap();
        let trace = gen.generate(law, 2_000_000.0);
        let inter = platform_interarrivals(&trace);
        assert_eq!(inter.len(), trace.len() - 1);
        // Platform of 8 processors with 1 000 s MTBF each → 125 s platform MTBF.
        let fit = fit_exponential(&inter).unwrap();
        assert!((fit.mean() - 125.0).abs() / 125.0 < 0.05, "fitted mean {}", fit.mean());
    }

    #[test]
    fn interarrivals_of_tiny_trace_is_empty() {
        let trace = FailureTrace::new(2, vec![]).unwrap();
        assert!(platform_interarrivals(&trace).is_empty());
    }
}

//! The [`FailureDistribution`] trait shared by all inter-arrival laws.

use crate::rng::RandomSource;

/// Identifies the family of a failure distribution.
///
/// Useful for dispatching analytical shortcuts: the scheduler can only use the
/// closed-form Proposition 1 formula when the platform law is
/// [`DistributionKind::Exponential`]; for every other family it must fall back
/// to heuristics and simulation (paper §6, third extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DistributionKind {
    /// Memoryless Exponential law (the paper's main model).
    Exponential,
    /// Weibull law (typical for real HPC failure logs, shape < 1).
    Weibull,
    /// Log-normal law.
    LogNormal,
    /// A shifted or composed law with no standard name.
    Other,
}

impl std::fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DistributionKind::Exponential => "exponential",
            DistributionKind::Weibull => "weibull",
            DistributionKind::LogNormal => "log-normal",
            DistributionKind::Other => "other",
        };
        f.write_str(name)
    }
}

/// A probability distribution over failure inter-arrival times (in seconds).
///
/// All implementations are continuous distributions on `[0, ∞)`. The trait is
/// object-safe: the simulator stores platforms as `Box<dyn FailureDistribution>`.
///
/// # Contract
///
/// * `cdf` is non-decreasing, `cdf(0) = 0` (or the left limit thereof) and
///   `cdf(x) → 1` as `x → ∞`;
/// * `survival(x) = 1 − cdf(x)`;
/// * `sample` draws by inverse-transform from the provided [`RandomSource`],
///   so equal seeds yield equal samples;
/// * `hazard(x) = pdf(x) / survival(x)` wherever the survival is positive.
pub trait FailureDistribution: std::fmt::Debug + Send + Sync {
    /// The family this distribution belongs to.
    fn kind(&self) -> DistributionKind;

    /// Draws one inter-arrival time.
    fn sample(&self, rng: &mut dyn RandomSource) -> f64;

    /// Probability density function at `x ≥ 0`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x) = 1 − cdf(x)`.
    fn survival(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).max(0.0)
    }

    /// Hazard (failure) rate `pdf(x) / survival(x)`.
    ///
    /// Returns `f64::INFINITY` where the survival function is zero.
    fn hazard(&self, x: f64) -> f64 {
        let s = self.survival(x);
        if s <= 0.0 {
            f64::INFINITY
        } else {
            self.pdf(x) / s
        }
    }

    /// Mean of the distribution (the MTBF when the law describes failures).
    fn mean(&self) -> f64;

    /// Quantile function: the smallest `x` such that `cdf(x) ≥ p`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Conditional survival `P(X > t + x | X > t)`.
    ///
    /// For the Exponential law this equals `survival(x)` (memorylessness);
    /// for Weibull/log-normal it depends on the elapsed time `t`, which is the
    /// whole difficulty of §6's third extension.
    fn conditional_survival(&self, elapsed: f64, x: f64) -> f64 {
        let s_t = self.survival(elapsed);
        if s_t <= 0.0 {
            0.0
        } else {
            self.survival(elapsed + x) / s_t
        }
    }

    /// Draws a remaining inter-arrival time conditioned on `elapsed` time
    /// having already passed without a failure.
    ///
    /// Default implementation inverts the conditional CDF with a uniform
    /// variate; exponential overrides this with plain `sample` (memoryless).
    fn sample_remaining(&self, elapsed: f64, rng: &mut dyn RandomSource) -> f64 {
        let u = rng.next_open_f64();
        // Solve survival(elapsed + x) / survival(elapsed) = 1 - u for x via the quantile.
        let s_t = self.survival(elapsed);
        if s_t <= 0.0 {
            return 0.0;
        }
        let target_cdf = 1.0 - s_t * (1.0 - u);
        let p = target_cdf.clamp(f64::MIN_POSITIVE, 1.0 - 1e-15);
        (self.quantile(p) - elapsed).max(0.0)
    }
}

/// Forwarding impl so shared laws (`Arc<dyn FailureDistribution + Send + Sync>`)
/// can be used wherever an owned law is expected — e.g. cloning one law into
/// every machine of a [`ClusterFailureInjector`](crate::ClusterFailureInjector)
/// across Monte-Carlo trials without re-boxing.
///
/// Every method forwards to the inner law, including the ones with default
/// bodies: a law that overrides a default (the Exponential's memoryless
/// `sample_remaining`, say) must behave identically through the `Arc`.
impl FailureDistribution for std::sync::Arc<dyn FailureDistribution + Send + Sync> {
    fn kind(&self) -> DistributionKind {
        (**self).kind()
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        (**self).sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        (**self).pdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        (**self).cdf(x)
    }

    fn survival(&self, x: f64) -> f64 {
        (**self).survival(x)
    }

    fn hazard(&self, x: f64) -> f64 {
        (**self).hazard(x)
    }

    fn mean(&self) -> f64 {
        (**self).mean()
    }

    fn quantile(&self, p: f64) -> f64 {
        (**self).quantile(p)
    }

    fn conditional_survival(&self, elapsed: f64, x: f64) -> f64 {
        (**self).conditional_survival(elapsed, x)
    }

    fn sample_remaining(&self, elapsed: f64, rng: &mut dyn RandomSource) -> f64 {
        (**self).sample_remaining(elapsed, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::rng::Pcg64;

    #[test]
    fn kind_display_names() {
        assert_eq!(DistributionKind::Exponential.to_string(), "exponential");
        assert_eq!(DistributionKind::Weibull.to_string(), "weibull");
        assert_eq!(DistributionKind::LogNormal.to_string(), "log-normal");
        assert_eq!(DistributionKind::Other.to_string(), "other");
    }

    #[test]
    fn trait_is_object_safe() {
        let exp = Exponential::new(0.5).unwrap();
        let boxed: Box<dyn FailureDistribution> = Box::new(exp);
        let mut rng = Pcg64::seed_from_u64(1);
        assert!(boxed.sample(&mut rng) >= 0.0);
        assert_eq!(boxed.kind(), DistributionKind::Exponential);
    }

    #[test]
    fn default_survival_complements_cdf() {
        let exp = Exponential::new(2.0).unwrap();
        for &x in &[0.0, 0.1, 1.0, 3.0] {
            let total = exp.cdf(x) + exp.survival(x);
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn default_hazard_is_pdf_over_survival() {
        let exp = Exponential::new(0.25).unwrap();
        for &x in &[0.0, 0.5, 2.0] {
            let expected = exp.pdf(x) / exp.survival(x);
            assert!((exp.hazard(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn conditional_survival_of_exponential_is_memoryless() {
        let exp = Exponential::new(0.1).unwrap();
        for &t in &[0.0, 1.0, 10.0] {
            for &x in &[0.5, 2.0] {
                let cond = exp.conditional_survival(t, x);
                assert!((cond - exp.survival(x)).abs() < 1e-10);
            }
        }
    }
}

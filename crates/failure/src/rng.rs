//! Deterministic pseudo-random number generation.
//!
//! The library deliberately ships its own small generators instead of pulling
//! in an external RNG crate: every Monte-Carlo experiment in the reproduction
//! must be bit-for-bit reproducible from a seed, and the generators used here
//! ([`SplitMix64`] for seeding, [`Pcg64`] — the PCG XSL RR 128/64 variant —
//! for the stream) are well studied, tiny and fast.
//!
//! All sampling code in this workspace is written against the
//! [`RandomSource`] trait, so alternative generators (including recorded
//! streams for tests) can be substituted.

/// A source of uniformly distributed random numbers.
///
/// The trait is object-safe so that simulators can hold `&mut dyn RandomSource`.
pub trait RandomSource {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a `f64` uniformly distributed in the half-open interval `[0, 1)`.
    ///
    /// The default implementation uses the upper 53 bits of [`next_u64`],
    /// which yields all representable multiples of 2⁻⁵³ in `[0, 1)`.
    ///
    /// [`next_u64`]: RandomSource::next_u64
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a `f64` uniformly distributed in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` or `ln(1 - 1) = ln(0)`
    /// must be avoided.
    fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: https://arxiv.org/abs/1805.10941
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    fn next_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low.is_finite() && high.is_finite(), "range bounds must be finite");
        assert!(low < high, "low must be strictly less than high");
        low + (high - low) * self.next_f64()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.next_f64() < p
    }
}

/// SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Pcg64`], but usable as a (statistically weaker) generator on its own.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG XSL RR 128/64: a 128-bit-state, 64-bit-output permuted congruential
/// generator.
///
/// This is the generator used throughout the workspace for Monte-Carlo
/// simulation. It has a period of 2¹²⁸ and passes standard statistical test
/// batteries; it is more than adequate for the sample sizes used here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator from an explicit 128-bit state and stream selector.
    ///
    /// The increment is forced to be odd as required by the underlying LCG.
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 { state: 0, increment };
        // Standard PCG seeding sequence.
        pcg.step();
        pcg.state = pcg.state.wrapping_add(state);
        pcg.step();
        pcg
    }

    /// Creates a generator from a single 64-bit seed, expanding it with
    /// [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let a = sm.next_u64() as u128;
        let b = sm.next_u64() as u128;
        let c = sm.next_u64() as u128;
        let d = sm.next_u64() as u128;
        Pcg64::new((a << 64) | b, (c << 64) | d)
    }

    /// Derives an independent generator for a sub-stream (e.g. one per
    /// processor or one per Monte-Carlo trial).
    ///
    /// The derivation hashes the parent state together with `index`, so
    /// sub-streams with different indices are statistically independent of
    /// each other and of the parent.
    pub fn derive(&self, index: u64) -> Pcg64 {
        let mut sm = SplitMix64::seed_from_u64(
            (self.state as u64)
                ^ ((self.state >> 64) as u64).rotate_left(17)
                ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let a = sm.next_u64() as u128;
        let b = sm.next_u64() as u128;
        let c = sm.next_u64() as u128;
        let d = sm.next_u64() as u128;
        Pcg64::new((a << 64) | b, (c << 64) | d)
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(self.increment);
    }
}

impl Default for Pcg64 {
    /// A generator with a fixed, documented seed (`0xCAFE_F00D`).
    fn default() -> Self {
        Pcg64::seed_from_u64(0xCAFE_F00D)
    }
}

impl RandomSource for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        // XSL-RR output permutation.
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

/// A [`RandomSource`] that replays a recorded sequence of `f64` values.
///
/// Intended for unit tests that need full control over "randomness"; once the
/// recorded values are exhausted the source cycles back to the beginning.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedSource {
    values: Vec<f64>,
    cursor: usize,
}

impl RecordedSource {
    /// Creates a replay source from explicit uniform variates in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a value outside `[0, 1)`.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "recorded source needs at least one value");
        assert!(
            values.iter().all(|v| (0.0..1.0).contains(v)),
            "recorded values must lie in [0, 1)"
        );
        RecordedSource { values, cursor: 0 }
    }
}

impl RandomSource for RecordedSource {
    fn next_u64(&mut self) -> u64 {
        // Invert the `next_f64` mapping so that `next_f64` returns the
        // recorded value exactly (up to 2^-53 resolution).
        let v = self.values[self.cursor];
        self.cursor = (self.cursor + 1) % self.values.len();
        ((v * (1u64 << 53) as f64) as u64) << 11
    }

    fn next_f64(&mut self) -> f64 {
        let v = self.values[self.cursor];
        self.cursor = (self.cursor + 1) % self.values.len();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 1234567 from the public-domain reference
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::seed_from_u64(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism check against our own frozen values.
        let mut sm2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn pcg_is_deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        let mut c = Pcg64::seed_from_u64(100);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_doubles_are_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u} out of range");
        }
    }

    #[test]
    fn open_interval_never_returns_zero() {
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(rng.next_open_f64() > 0.0);
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut rng = Pcg64::seed_from_u64(6);
        for bound in [1u64, 2, 3, 7, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_covers_all_residues() {
        let mut rng = Pcg64::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[rng.next_bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        let mut rng = Pcg64::seed_from_u64(8);
        rng.next_bounded(0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = Pcg64::seed_from_u64(10);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.0));
        }
    }

    #[test]
    fn derive_produces_independent_streams() {
        let parent = Pcg64::seed_from_u64(11);
        let mut a = parent.derive(0);
        let mut b = parent.derive(1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn recorded_source_replays_values() {
        let mut src = RecordedSource::new(vec![0.25, 0.5, 0.75]);
        assert_eq!(src.next_f64(), 0.25);
        assert_eq!(src.next_f64(), 0.5);
        assert_eq!(src.next_f64(), 0.75);
        // cycles
        assert_eq!(src.next_f64(), 0.25);
    }

    #[test]
    fn default_pcg_is_fixed_seed() {
        let mut a = Pcg64::default();
        let mut b = Pcg64::seed_from_u64(0xCAFE_F00D);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn random_source_is_object_safe() {
        let mut rng = Pcg64::seed_from_u64(1);
        let dynrng: &mut dyn RandomSource = &mut rng;
        let _ = dynrng.next_f64();
    }

    #[test]
    fn uniform_variance_is_about_one_twelfth() {
        let mut rng = Pcg64::seed_from_u64(12);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var = {var}");
    }
}

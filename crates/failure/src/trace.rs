//! Synthetic failure traces: recording, replay and generation.
//!
//! The paper's §6 extension (and its companion papers) evaluate checkpointing
//! heuristics against *failure logs of production clusters* from the Failure
//! Trace Archive. Those logs are not redistributable, so this module provides
//! the substitution documented in `DESIGN.md`: a [`TraceGenerator`] that
//! produces synthetic logs from any [`FailureDistribution`] (including
//! Weibull/log-normal mixtures fitted to published parameters), and a
//! [`FailureTrace`] container that can be replayed deterministically by the
//! simulator exactly as a real log would be.

use crate::distribution::FailureDistribution;
use crate::error::FailureModelError;
use crate::platform::{PlatformFailureProcess, ProcessorId};

/// One failure event in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureEvent {
    /// Absolute time of the failure, in seconds from the trace origin.
    pub time: f64,
    /// The processor that failed.
    pub processor: ProcessorId,
}

/// An ordered collection of failure events on a platform of `p` processors.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureTrace {
    processors: usize,
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// Builds a trace from raw events.
    ///
    /// # Errors
    ///
    /// * [`FailureModelError::EmptyPlatform`] if `processors == 0`;
    /// * [`FailureModelError::NonMonotoneTrace`] if timestamps decrease;
    /// * [`FailureModelError::UnknownProcessor`] if an event references a
    ///   processor `≥ processors`.
    pub fn new(processors: usize, events: Vec<FailureEvent>) -> Result<Self, FailureModelError> {
        if processors == 0 {
            return Err(FailureModelError::EmptyPlatform);
        }
        for (i, w) in events.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(FailureModelError::NonMonotoneTrace { index: i + 1 });
            }
        }
        if let Some(ev) = events.iter().find(|e| e.processor.0 >= processors) {
            return Err(FailureModelError::UnknownProcessor {
                processor: ev.processor.0,
                platform_size: processors,
            });
        }
        Ok(FailureTrace { processors, events })
    }

    /// The number of processors in the traced platform.
    pub fn processor_count(&self) -> usize {
        self.processors
    }

    /// The number of failure events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace contains no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in chronological order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// The time horizon covered by the trace (time of the last event, or 0).
    pub fn horizon(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time)
    }

    /// Iterates over the events strictly after `time`.
    pub fn events_after(&self, time: f64) -> impl Iterator<Item = &FailureEvent> {
        let start = self.events.partition_point(|e| e.time <= time);
        self.events[start..].iter()
    }

    /// The first failure strictly after `time`, if any.
    pub fn next_failure_after(&self, time: f64) -> Option<FailureEvent> {
        self.events_after(time).next().copied()
    }

    /// Mean platform-level inter-arrival time of the trace.
    ///
    /// Returns `None` for traces with fewer than two events.
    pub fn mean_interarrival(&self) -> Option<f64> {
        if self.events.len() < 2 {
            return None;
        }
        let span = self.events.last().unwrap().time - self.events.first().unwrap().time;
        Some(span / (self.events.len() - 1) as f64)
    }

    /// Per-processor failure counts.
    pub fn per_processor_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.processors];
        for ev in &self.events {
            counts[ev.processor.0] += 1;
        }
        counts
    }

    /// Merges two traces over the same platform, preserving time order.
    ///
    /// # Errors
    ///
    /// Returns an error if the platforms have different sizes.
    pub fn merge(&self, other: &FailureTrace) -> Result<FailureTrace, FailureModelError> {
        if self.processors != other.processors {
            return Err(FailureModelError::UnknownProcessor {
                processor: other.processors,
                platform_size: self.processors,
            });
        }
        let mut events = Vec::with_capacity(self.events.len() + other.events.len());
        let (mut i, mut j) = (0, 0);
        while i < self.events.len() && j < other.events.len() {
            if self.events[i].time <= other.events[j].time {
                events.push(self.events[i]);
                i += 1;
            } else {
                events.push(other.events[j]);
                j += 1;
            }
        }
        events.extend_from_slice(&self.events[i..]);
        events.extend_from_slice(&other.events[j..]);
        FailureTrace::new(self.processors, events)
    }

    /// Restricts the trace to events in `[0, horizon]`.
    pub fn truncated(&self, horizon: f64) -> FailureTrace {
        let events = self.events.iter().copied().take_while(|e| e.time <= horizon).collect();
        FailureTrace { processors: self.processors, events }
    }
}

/// Generates synthetic failure traces from per-processor failure laws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGenerator {
    processors: usize,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for a platform of `processors` processors, with all
    /// randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyPlatform`] if `processors == 0`.
    pub fn new(processors: usize, seed: u64) -> Result<Self, FailureModelError> {
        if processors == 0 {
            return Err(FailureModelError::EmptyPlatform);
        }
        Ok(TraceGenerator { processors, seed })
    }

    /// Generates a trace up to `horizon` seconds where every processor follows
    /// (an independent copy of) `law`.
    pub fn generate<D>(&self, law: D, horizon: f64) -> FailureTrace
    where
        D: FailureDistribution + Clone + 'static,
    {
        let mut platform = PlatformFailureProcess::homogeneous(self.processors, law, self.seed)
            .expect("processors > 0 was validated at construction");
        let mut events = Vec::new();
        loop {
            let f = platform.peek_failure();
            if f.time > horizon {
                break;
            }
            let f = platform.next_failure();
            events.push(FailureEvent { time: f.time, processor: f.processor });
        }
        FailureTrace { processors: self.processors, events }
    }

    /// Generates a trace where each processor draws inter-arrival times from
    /// its own law in `laws` (length must equal the processor count).
    ///
    /// # Panics
    ///
    /// Panics if `laws.len()` differs from the processor count.
    pub fn generate_heterogeneous(
        &self,
        laws: Vec<Box<dyn FailureDistribution>>,
        horizon: f64,
    ) -> FailureTrace {
        assert_eq!(laws.len(), self.processors, "need exactly one law per processor");
        let mut platform = PlatformFailureProcess::heterogeneous(laws, self.seed)
            .expect("processors > 0 was validated at construction");
        let mut events = Vec::new();
        loop {
            let f = platform.peek_failure();
            if f.time > horizon {
                break;
            }
            let f = platform.next_failure();
            events.push(FailureEvent { time: f.time, processor: f.processor });
        }
        FailureTrace { processors: self.processors, events }
    }
}

/// A [`RandomSource`](crate::rng::RandomSource)-free failure stream backed
/// by a recorded trace.
///
/// Wraps a [`FailureTrace`] with a cursor so a simulator can consume the
/// platform-level failure sequence exactly once, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplay {
    trace: FailureTrace,
    cursor: usize,
}

impl TraceReplay {
    /// Starts replaying `trace` from its beginning.
    pub fn new(trace: FailureTrace) -> Self {
        TraceReplay { trace, cursor: 0 }
    }

    /// The next failure strictly after `time`, advancing the cursor.
    ///
    /// Returns `None` when the trace is exhausted.
    pub fn next_after(&mut self, time: f64) -> Option<FailureEvent> {
        while self.cursor < self.trace.len() {
            let ev = self.trace.events()[self.cursor];
            self.cursor += 1;
            if ev.time > time {
                return Some(ev);
            }
        }
        None
    }

    /// Resets the cursor to the beginning of the trace.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// The underlying trace.
    pub fn trace(&self) -> &FailureTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::weibull::Weibull;

    fn ev(time: f64, p: usize) -> FailureEvent {
        FailureEvent { time, processor: ProcessorId(p) }
    }

    #[test]
    fn trace_validates_inputs() {
        assert!(FailureTrace::new(0, vec![]).is_err());
        assert!(FailureTrace::new(2, vec![ev(1.0, 0), ev(0.5, 1)]).is_err());
        assert!(FailureTrace::new(2, vec![ev(1.0, 5)]).is_err());
        assert!(FailureTrace::new(2, vec![ev(1.0, 0), ev(2.0, 1)]).is_ok());
    }

    #[test]
    fn empty_trace_properties() {
        let t = FailureTrace::new(4, vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.horizon(), 0.0);
        assert!(t.mean_interarrival().is_none());
        assert!(t.next_failure_after(0.0).is_none());
    }

    #[test]
    fn events_after_is_strict() {
        let t = FailureTrace::new(2, vec![ev(1.0, 0), ev(2.0, 1), ev(3.0, 0)]).unwrap();
        let after: Vec<f64> = t.events_after(2.0).map(|e| e.time).collect();
        assert_eq!(after, vec![3.0]);
        assert_eq!(t.next_failure_after(0.0).unwrap().time, 1.0);
        assert_eq!(t.next_failure_after(1.0).unwrap().time, 2.0);
    }

    #[test]
    fn mean_interarrival_and_counts() {
        let t = FailureTrace::new(2, vec![ev(0.0, 0), ev(10.0, 1), ev(30.0, 1)]).unwrap();
        assert!((t.mean_interarrival().unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(t.per_processor_counts(), vec![1, 2]);
    }

    #[test]
    fn merge_interleaves_in_time_order() {
        let a = FailureTrace::new(2, vec![ev(1.0, 0), ev(5.0, 0)]).unwrap();
        let b = FailureTrace::new(2, vec![ev(2.0, 1), ev(6.0, 1)]).unwrap();
        let m = a.merge(&b).unwrap();
        let times: Vec<f64> = m.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn merge_rejects_mismatched_platforms() {
        let a = FailureTrace::new(2, vec![]).unwrap();
        let b = FailureTrace::new(3, vec![]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn truncated_drops_late_events() {
        let t = FailureTrace::new(1, vec![ev(1.0, 0), ev(2.0, 0), ev(3.0, 0)]).unwrap();
        let cut = t.truncated(2.0);
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.horizon(), 2.0);
    }

    #[test]
    fn generator_produces_monotone_trace_with_expected_density() {
        let gen = TraceGenerator::new(16, 2024).unwrap();
        let law = Exponential::from_mtbf(1000.0).unwrap();
        let horizon = 500_000.0;
        let trace = gen.generate(law, horizon);
        assert!(!trace.is_empty());
        assert!(trace.events().windows(2).all(|w| w[1].time >= w[0].time));
        assert!(trace.horizon() <= horizon);
        // Expected count ≈ horizon * p / mtbf = 500000*16/1000 = 8000.
        let expected = 8000.0;
        let got = trace.len() as f64;
        assert!((got - expected).abs() / expected < 0.1, "got {got} events");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let gen = TraceGenerator::new(4, 7).unwrap();
        let a = gen.generate(Exponential::from_mtbf(100.0).unwrap(), 10_000.0);
        let b = gen.generate(Exponential::from_mtbf(100.0).unwrap(), 10_000.0);
        assert_eq!(a, b);
        let gen2 = TraceGenerator::new(4, 8).unwrap();
        let c = gen2.generate(Exponential::from_mtbf(100.0).unwrap(), 10_000.0);
        assert_ne!(a, c);
    }

    #[test]
    fn generator_rejects_empty_platform() {
        assert!(TraceGenerator::new(0, 1).is_err());
    }

    #[test]
    fn heterogeneous_generation_mixes_laws() {
        let gen = TraceGenerator::new(2, 55).unwrap();
        let laws: Vec<Box<dyn FailureDistribution>> = vec![
            Box::new(Exponential::from_mtbf(100.0).unwrap()),
            Box::new(Weibull::with_mean(0.7, 100.0).unwrap()),
        ];
        let trace = gen.generate_heterogeneous(laws, 100_000.0);
        let counts = trace.per_processor_counts();
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    #[should_panic(expected = "one law per processor")]
    fn heterogeneous_generation_checks_arity() {
        let gen = TraceGenerator::new(3, 55).unwrap();
        let laws: Vec<Box<dyn FailureDistribution>> =
            vec![Box::new(Exponential::new(1.0).unwrap())];
        let _ = gen.generate_heterogeneous(laws, 10.0);
    }

    #[test]
    fn replay_consumes_in_order_and_rewinds() {
        let t = FailureTrace::new(1, vec![ev(1.0, 0), ev(2.0, 0), ev(5.0, 0)]).unwrap();
        let mut replay = TraceReplay::new(t);
        assert_eq!(replay.next_after(0.0).unwrap().time, 1.0);
        assert_eq!(replay.next_after(1.5).unwrap().time, 2.0);
        assert_eq!(replay.next_after(2.0).unwrap().time, 5.0);
        assert!(replay.next_after(5.0).is_none());
        replay.rewind();
        assert_eq!(replay.next_after(4.0).unwrap().time, 5.0);
        assert_eq!(replay.trace().len(), 3);
    }
}

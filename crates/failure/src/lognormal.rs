//! The log-normal failure law — the second non-memoryless law cited by the
//! paper's §6 extension (Heien et al. SC'11 fit log-normal inter-arrival
//! times to production failure logs).

use crate::distribution::{DistributionKind, FailureDistribution};
use crate::error::{ensure_positive, FailureModelError};
use crate::math::{std_normal_cdf, std_normal_quantile};
use crate::rng::RandomSource;

/// Log-normal distribution: `ln X ~ Normal(μ, σ²)`.
///
/// # Example
///
/// ```rust
/// use ckpt_failure::{LogNormal, FailureDistribution};
///
/// // Median of e^8 ≈ 2981 s, moderate dispersion.
/// let ln = LogNormal::new(8.0, 0.5)?;
/// assert!((ln.cdf(ln.quantile(0.3)) - 0.3).abs() < 1e-6);
/// # Ok::<(), ckpt_failure::FailureModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal law with location `μ` (any finite value) and
    /// scale `σ > 0` of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns an error if `σ ≤ 0`, or if either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, FailureModelError> {
        if !mu.is_finite() {
            return Err(FailureModelError::NonFiniteParameter { name: "mu", value: mu });
        }
        Ok(LogNormal { mu, sigma: ensure_positive("sigma", sigma)? })
    }

    /// Creates a log-normal law with the given **mean** and `σ`.
    ///
    /// Solves `mean = exp(μ + σ²/2)` for `μ`, which is the natural way to
    /// compare against an Exponential law with the same MTBF.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean ≤ 0` or `σ ≤ 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Result<Self, FailureModelError> {
        let mean = ensure_positive("mean", mean)?;
        let sigma = ensure_positive("sigma", sigma)?;
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// The location parameter `μ` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `σ` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The median `e^μ`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl FailureDistribution for LogNormal {
    fn kind(&self) -> DistributionKind {
        DistributionKind::LogNormal
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        // Box–Muller on two open-interval uniforms, then exponentiate.
        let u1 = rng.next_open_f64();
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(LogNormal::new(0.0, 1.0).is_ok());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn with_mean_hits_requested_mean() {
        let ln = LogNormal::with_mean(1000.0, 0.8).unwrap();
        assert!((ln.mean() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn median_is_exp_mu() {
        let ln = LogNormal::new(3.0, 0.5).unwrap();
        assert!((ln.median() - 3.0f64.exp()).abs() < 1e-9);
        assert!((ln.quantile(0.5) - ln.median()).abs() / ln.median() < 1e-6);
    }

    #[test]
    fn cdf_is_zero_at_and_below_zero() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_eq!(ln.cdf(-5.0), 0.0);
        assert_eq!(ln.pdf(-5.0), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let ln = LogNormal::new(5.0, 1.2).unwrap();
        for &p in &[0.05, 0.2, 0.5, 0.8, 0.95] {
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-5);
        }
    }

    #[test]
    fn sample_mean_converges() {
        let ln = LogNormal::with_mean(500.0, 0.6).unwrap();
        let mut rng = Pcg64::seed_from_u64(99);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| ln.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 6.0, "sample mean = {mean}");
    }

    #[test]
    fn sample_median_converges() {
        let ln = LogNormal::new(6.0, 1.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(123);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| ln.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expected = ln.median();
        assert!((median - expected).abs() / expected < 0.03, "median {median} vs {expected}");
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(mu in -2.0f64..10.0, sigma in 0.1f64..2.5, a in 0.0f64..1e5, b in 0.0f64..1e5) {
            let ln = LogNormal::new(mu, sigma).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(ln.cdf(lo) <= ln.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_samples_positive(seed in any::<u64>(), mu in -2.0f64..8.0, sigma in 0.1f64..2.0) {
            let ln = LogNormal::new(mu, sigma).unwrap();
            let mut rng = Pcg64::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert!(ln.sample(&mut rng) > 0.0);
            }
        }
    }
}

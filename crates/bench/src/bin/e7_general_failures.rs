//! Experiment E7 — non-memoryless failures (§6, third extension).
//!
//! Plans chain schedules with (i) the exponential-equivalent DP and (ii) the
//! work-before-failure greedy rule, then replays both (plus the trivial
//! baselines) by simulation on platforms whose failures follow Weibull and
//! log-normal laws with the same MTBF, across several shape parameters.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e7_general_failures`.

use ckpt_bench::{print_header, random_chain_instance, secs};
use ckpt_core::{general_failures, Schedule};
use ckpt_dag::properties;
use ckpt_failure::{FailureDistribution, LogNormal, Weibull};

fn main() {
    let processors = 32usize;
    let proc_mtbf = 200_000.0;
    let lambda = processors as f64 / proc_mtbf;
    let trials = 2_000;

    let inst = random_chain_instance(13, 16, 1_000.0, 4_000.0, 120.0, 180.0, 60.0, lambda);
    let order = properties::as_chain(inst.graph()).expect("chain");

    println!(
        "E7 — schedules replayed under non-memoryless failures ({} processors, per-processor MTBF {} s, {} trials)\n",
        processors, proc_mtbf, trials
    );
    print_header(&[
        ("law", 18),
        ("strategy", 26),
        ("ckpts", 7),
        ("mean makespan", 15),
        ("p95 makespan", 14),
        ("mean failures", 14),
    ]);

    let laws: Vec<(String, Box<dyn FailureDistribution>)> = vec![
        ("weibull k=0.5".into(), Box::new(Weibull::with_mean(0.5, proc_mtbf).unwrap())),
        ("weibull k=0.7".into(), Box::new(Weibull::with_mean(0.7, proc_mtbf).unwrap())),
        ("weibull k=1.0".into(), Box::new(Weibull::with_mean(1.0, proc_mtbf).unwrap())),
        ("lognormal s=1.0".into(), Box::new(LogNormal::with_mean(proc_mtbf, 1.0).unwrap())),
    ];

    for (law_name, law) in &laws {
        let exp_plan =
            general_failures::exponential_equivalent_schedule(&inst, law.as_ref(), processors)
                .expect("chain instance");
        let greedy =
            general_failures::work_before_failure_schedule(&inst, law.as_ref(), processors)
                .expect("chain instance");
        let everywhere = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
        let final_only = Schedule::checkpoint_final_only(&inst, order.clone()).unwrap();

        for (strategy, schedule) in [
            ("exp-equivalent DP", &exp_plan),
            ("work-before-failure", &greedy),
            ("checkpoint every task", &everywhere),
            ("final checkpoint only", &final_only),
        ] {
            // Rebuild the law per run (simulate_under_law takes ownership);
            // using with_mean keeps every clone identical.
            let outcome = match law_name.as_str() {
                "weibull k=0.5" => general_failures::simulate_under_law(
                    &inst,
                    schedule,
                    Weibull::with_mean(0.5, proc_mtbf).unwrap(),
                    processors,
                    trials,
                    31,
                ),
                "weibull k=0.7" => general_failures::simulate_under_law(
                    &inst,
                    schedule,
                    Weibull::with_mean(0.7, proc_mtbf).unwrap(),
                    processors,
                    trials,
                    31,
                ),
                "weibull k=1.0" => general_failures::simulate_under_law(
                    &inst,
                    schedule,
                    Weibull::with_mean(1.0, proc_mtbf).unwrap(),
                    processors,
                    trials,
                    31,
                ),
                _ => general_failures::simulate_under_law(
                    &inst,
                    schedule,
                    LogNormal::with_mean(proc_mtbf, 1.0).unwrap(),
                    processors,
                    trials,
                    31,
                ),
            }
            .expect("simulation");
            println!(
                "{:>18} {:>26} {:>7} {:>15} {:>14} {:>14.2}",
                law_name,
                strategy,
                schedule.checkpoint_count(),
                secs(outcome.makespan.mean),
                secs(outcome.makespan_quantile(0.95)),
                outcome.failures.mean,
            );
        }
        println!();
    }

    println!(
        "Expected shape: for k = 1.0 (the Exponential case) the exp-equivalent \
         DP is best by construction; for k < 1 (infant mortality) the greedy \
         rule narrows the gap or wins, and the trivial baselines bracket both."
    );
}

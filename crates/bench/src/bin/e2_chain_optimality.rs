//! Experiment E2 — Algorithm 1 optimality and scaling.
//!
//! Part 1 cross-checks the chain DP against exhaustive search on random small
//! chains (the optimality certificate behind Proposition 3). Part 2 measures
//! the DP's wall-clock scaling on chains up to 4 096 tasks, exhibiting the
//! `O(n²)` growth.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e2_chain_optimality`.

use std::time::Instant;

use ckpt_bench::{print_header, random_chain_instance, secs};
use ckpt_core::{brute_force, chain_dp};

fn main() {
    println!("E2 — chain DP optimality (vs exhaustive search) and scaling\n");

    // Part 1: optimality on random small chains.
    print_header(&[("seed", 6), ("n", 4), ("DP value", 14), ("exhaustive", 14), ("match", 7)]);
    for seed in 0..8u64 {
        let inst = random_chain_instance(seed, 8, 100.0, 4_000.0, 60.0, 90.0, 30.0, 1.0 / 3_000.0);
        let dp = chain_dp::optimal_chain_schedule(&inst).expect("chain instance");
        let brute = brute_force::optimal_schedule(&inst).expect("small instance");
        let matches = (dp.expected_makespan - brute.expected_makespan).abs()
            / brute.expected_makespan
            < 1e-10;
        println!(
            "{:>6} {:>4} {:>14} {:>14} {:>7}",
            seed,
            inst.task_count(),
            secs(dp.expected_makespan),
            secs(brute.expected_makespan),
            if matches { "yes" } else { "NO" }
        );
    }

    // Part 2: scaling of the O(n²) DP.
    println!();
    print_header(&[("n", 6), ("DP time (ms)", 14), ("ckpts", 7), ("E[T] (s)", 14)]);
    for &n in &[64usize, 128, 256, 512, 1_024, 2_048, 4_096] {
        let inst = random_chain_instance(42, n, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 10_000.0);
        let start = Instant::now();
        let dp = chain_dp::optimal_chain_schedule(&inst).expect("chain instance");
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        println!(
            "{:>6} {:>14.2} {:>7} {:>14}",
            n,
            elapsed,
            dp.schedule.checkpoint_count(),
            secs(dp.expected_makespan)
        );
    }

    println!("\nExpected shape: 'match' is yes on every row; DP time grows roughly 4x per doubling of n.");
}

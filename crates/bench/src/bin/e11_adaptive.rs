//! Experiment E11 — online checkpoint policies under misspecified failure
//! models: the policy-regret study of the `ckpt-adaptive` subsystem.
//!
//! The paper's schedules are computed once, offline, from a perfectly known
//! Exponential rate. This experiment measures what that assumption costs
//! when it is wrong — and what observing failures and re-planning
//! mid-execution buys back. One chain is planned at a fixed rate, then
//! executed under five truths (the planning rate itself, 4× and 10× higher
//! Exponential rates, a Weibull platform, and per-trial Weibull trace
//! replay) by five policies:
//!
//! * `clairvoyant` — the offline optimum solved at the truth's effective
//!   rate, replayed statically (the regret reference);
//! * `static-plan` — the offline optimum at the (mis)planning rate;
//! * `periodic-young` — Young's period at the planning rate;
//! * `adaptive-resolve` — Bayesian rate posterior + suffix re-solve after
//!   every failure;
//! * `rate-learning` — inter-failure MLE, re-solve on ≥ 1.5× drift.
//!
//! All policies of one scenario share per-trial failure streams (paired
//! comparison) and every number is deterministic at any thread count
//! (asserted below, along with the headline acceptance claims).
//!
//! Run with `cargo run --release -p ckpt-bench --bin e11_adaptive`
//! (`--json` / `--json=PATH` additionally emits the key metrics).

use ckpt_adaptive::{
    compare_policies, AdaptiveError, ChainSpec, EvaluationConfig, PolicyComparison, TruthModel,
};
use ckpt_bench::{print_header, JsonSummary};
use ckpt_failure::{Pcg64, RandomSource};

/// The planning rate every policy (except the clairvoyant) plans with.
const PLANNING_RATE: f64 = 1.0 / 40_000.0;
/// Monte-Carlo trials per policy and scenario.
const TRIALS: usize = 2_000;

fn spec() -> ChainSpec {
    // A 40-task chain totalling ~20 000 s of heterogeneous work (MTBF at
    // the planning rate = 2× the total work: rare-failure planning regime).
    let mut rng = Pcg64::seed_from_u64(0xE11);
    let weights: Vec<f64> = (0..40).map(|_| 200.0 + rng.next_f64() * 600.0).collect();
    let ckpt: Vec<f64> = (0..40).map(|_| 20.0 + rng.next_f64() * 40.0).collect();
    let rec: Vec<f64> = (0..40).map(|_| 30.0 + rng.next_f64() * 60.0).collect();
    ChainSpec::new(&weights, &ckpt, &rec, 30.0, 10.0).expect("valid chain parameters")
}

struct Scenario {
    name: &'static str,
    /// Key prefix in the JSON summary.
    key: &'static str,
    truth: TruthModel,
    /// Whether the truth's rate is ≥ 4× the planning rate (the acceptance
    /// rows: adapting must strictly beat the static plan).
    misspecified: bool,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "true = plan",
            key: "true_rate",
            truth: TruthModel::Exponential { lambda: PLANNING_RATE },
            misspecified: false,
        },
        Scenario {
            name: "4x rate",
            key: "rate_4x",
            truth: TruthModel::Exponential { lambda: 4.0 * PLANNING_RATE },
            misspecified: true,
        },
        Scenario {
            name: "10x rate",
            key: "rate_10x",
            truth: TruthModel::Exponential { lambda: 10.0 * PLANNING_RATE },
            misspecified: true,
        },
        Scenario {
            name: "weibull 10x",
            key: "weibull_10x",
            truth: TruthModel::WeibullPlatform {
                processors: 8,
                shape: 0.7,
                platform_mtbf: 4_000.0,
            },
            misspecified: true,
        },
        Scenario {
            // Burstier (shape 0.5) per-trial recorded logs at 8× the planned
            // intensity, replayed through the finite-trace stream.
            name: "trace 8x",
            key: "trace_8x",
            truth: TruthModel::WeibullTrace { processors: 4, shape: 0.5, platform_mtbf: 5_000.0 },
            misspecified: true,
        },
    ]
}

fn main() {
    let spec = spec();
    let config = EvaluationConfig { trials: TRIALS, seed: 0x5EED11, threads: 0 };
    println!(
        "E11 — online policies vs the offline plan under misspecified failure models\n\
         (40-task chain, ~{:.0} s work, planned at λ = {PLANNING_RATE:.2e}; {TRIALS} paired \n\
         trials per policy; regret is vs the clairvoyant offline optimum at the true rate)\n",
        spec.total_work(),
    );
    print_header(&[
        ("scenario", 12),
        ("policy", 17),
        ("mean makespan", 14),
        ("regret", 10),
        ("regret%", 8),
        ("ckpts", 6),
        ("fails", 6),
    ]);

    let mut summary = JsonSummary::new("e11_adaptive");
    summary.metric("planning_rate", PLANNING_RATE).count("trials", TRIALS);

    let mut horizon_rejected = false;
    for scenario in scenarios() {
        // A trace scenario whose trials outran the 64x horizon guard is a
        // harness-robustness event, not a silent statistic: the count is
        // surfaced in the JSON summary and the run exits non-zero after
        // emitting, instead of dying with nothing machine-readable.
        let cmp = match compare_policies(&spec, PLANNING_RATE, &scenario.truth, &config) {
            Ok(cmp) => cmp,
            Err(AdaptiveError::TraceHorizonExceeded { horizon, makespan, trials }) => {
                eprintln!(
                    "{:>12}: {trials} trial(s) outran the trace horizon \
                     ({horizon:.0} s, worst makespan {makespan:.0} s) — rejected",
                    scenario.name
                );
                summary.count(format!("{}_horizon_exceeded_trials", scenario.key), trials);
                horizon_rejected = true;
                continue;
            }
            Err(e) => panic!("scenario {}: {e}", scenario.name),
        };
        for row in &cmp.results {
            println!(
                "{:>12} {:>17} {:>14.1} {:>10.1} {:>7.2}% {:>6.2} {:>6.2}",
                scenario.name,
                row.policy,
                row.mean_makespan,
                row.regret,
                100.0 * row.regret / cmp.clairvoyant_makespan,
                row.mean_checkpoints,
                row.mean_failures,
            );
            summary.metric(
                format!("{}_{}_makespan", scenario.key, row.policy.replace('-', "_")),
                row.mean_makespan,
            );
        }
        summary.count(format!("{}_horizon_exceeded_trials", scenario.key), 0);
        println!();
        assert_claims(&scenario, &cmp);
    }

    determinism_check(&spec, &config);
    println!(
        "Acceptance (asserted): under every truth with rate >= 4x the planning rate,\n\
         adaptive-resolve and rate-learning achieve strictly lower mean makespan than\n\
         static-plan; at the true rate adaptive-resolve matches the static optimum\n\
         (within 1% — the posterior never drifts far when the plan was right); and\n\
         every comparison is bit-identical at any thread count."
    );
    summary.emit();
    if horizon_rejected {
        std::process::exit(2);
    }
}

/// The headline claims, asserted per scenario.
fn assert_claims(scenario: &Scenario, cmp: &PolicyComparison) {
    let stale = cmp.row("static-plan").mean_makespan;
    let adaptive = cmp.row("adaptive-resolve").mean_makespan;
    let learning = cmp.row("rate-learning").mean_makespan;
    if scenario.misspecified {
        assert!(
            adaptive < stale,
            "{}: adaptive-resolve {adaptive} must beat static-plan {stale}",
            scenario.name
        );
        assert!(
            learning < stale,
            "{}: rate-learning {learning} must beat static-plan {stale}",
            scenario.name
        );
    } else {
        // Truth == plan: the static plan is the clairvoyant optimum and the
        // adaptive policy's posterior hovers at the planning rate — its
        // mean makespan must match the optimum within Monte-Carlo noise.
        assert_eq!(cmp.row("static-plan").regret, 0.0, "static == clairvoyant at the true rate");
        let gap = (adaptive - stale).abs() / stale;
        assert!(gap < 0.01, "{}: adaptive-resolve off the optimum by {gap}", scenario.name);
    }
}

/// Re-runs one misspecified scenario at several worker counts and demands
/// byte-identical results.
fn determinism_check(spec: &ChainSpec, config: &EvaluationConfig) {
    let truth = TruthModel::Exponential { lambda: 10.0 * PLANNING_RATE };
    let single =
        compare_policies(spec, PLANNING_RATE, &truth, &EvaluationConfig { threads: 1, ..*config })
            .expect("valid scenario");
    for threads in [2usize, 3, 8] {
        let multi =
            compare_policies(spec, PLANNING_RATE, &truth, &EvaluationConfig { threads, ..*config })
                .expect("valid scenario");
        assert_eq!(single, multi, "policy comparison differs at {threads} threads");
    }
    println!("Determinism: 10x scenario re-run at 1/2/3/8 threads — bit-identical.\n");
}

//! Experiment E1 — Proposition 1 validation.
//!
//! For a sweep of `(W, C, D, R, λ)` configurations, compares:
//!   * the exact closed form (Proposition 1),
//!   * the Monte-Carlo estimate from the simulator,
//!   * the Bouguerra et al. comparator (shown by §3 to be biased),
//!   * the first-order (Young/Daly-style) approximation,
//!
//! and reports the relative error of each analytical value against the
//! simulation.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e1_formula_validation`.

use ckpt_bench::{pct, print_header, secs};
use ckpt_expectation::approximations::{bouguerra_expected_time, first_order_expected_time};
use ckpt_expectation::exact::{expected_time, ExecutionParams};
use ckpt_simulator::{Segment, SimulationScenario};

fn main() {
    let trials = 40_000;
    println!(
        "E1 — Proposition 1 vs simulation vs related-work formulas ({trials} trials per row)\n"
    );
    print_header(&[
        ("W", 8),
        ("C", 6),
        ("D", 5),
        ("R", 6),
        ("MTBF", 9),
        ("simulated", 12),
        ("exact", 12),
        ("err(exact)", 11),
        ("bouguerra", 12),
        ("err(boug)", 11),
        ("1st-order", 12),
        ("err(1st)", 11),
    ]);

    let configs = [
        (3_600.0, 60.0, 0.0, 60.0, 864_000.0),
        (3_600.0, 60.0, 0.0, 60.0, 86_400.0),
        (3_600.0, 600.0, 60.0, 600.0, 86_400.0),
        (3_600.0, 600.0, 60.0, 600.0, 21_600.0),
        (10_000.0, 300.0, 60.0, 300.0, 20_000.0),
        (10_000.0, 1_800.0, 60.0, 1_800.0, 20_000.0),
        (900.0, 120.0, 30.0, 240.0, 7_200.0),
        (86_400.0, 600.0, 60.0, 600.0, 86_400.0),
        (500.0, 30.0, 10.0, 45.0, 2_000.0),
    ];

    for (i, &(w, c, d, r, mtbf)) in configs.iter().enumerate() {
        let lambda = 1.0 / mtbf;
        let params = ExecutionParams::new(w, c, d, r, lambda).expect("valid config");
        let exact = expected_time(&params);
        let bouguerra = bouguerra_expected_time(&params);
        let first = first_order_expected_time(&params);
        let outcome = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(trials)
            .with_seed(1_000 + i as u64)
            .run(&[Segment::new(w, c, r).expect("valid segment")]);
        let sim = outcome.makespan.mean;
        println!(
            "{:>8} {:>6} {:>5} {:>6} {:>9} {:>12} {:>12} {:>11} {:>12} {:>11} {:>12} {:>11}",
            secs(w),
            secs(c),
            secs(d),
            secs(r),
            secs(mtbf),
            secs(sim),
            secs(exact),
            pct((exact - sim).abs() / sim),
            secs(bouguerra),
            pct((bouguerra - sim).abs() / sim),
            secs(first),
            pct((first - sim).abs() / sim),
        );
    }

    println!(
        "\nExpected shape: err(exact) stays at Monte-Carlo noise level (<1%), \
         err(bouguerra) grows with λR, err(1st-order) grows with λ(W+C)."
    );
}

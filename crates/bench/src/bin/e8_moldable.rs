//! Experiment E8 — moldable tasks (§6, second extension).
//!
//! For a chain of moldable tasks, sweeps the maximum allowed allocation and
//! reports the per-task processor choices and the resulting expected makespan
//! under the four combinations of workload/overhead models.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e8_moldable`.

use ckpt_bench::{print_header, secs};
use ckpt_core::moldable::{plan_moldable_chain, MoldableTask};
use ckpt_expectation::overhead::{OverheadModel, ScalingScenario};
use ckpt_expectation::workload::WorkloadModel;

fn main() {
    let lambda_proc = 1.0 / (5.0 * 365.0 * 86_400.0);
    let tasks: Vec<MoldableTask> = [2.0e5, 1.5e6, 8.0e5, 4.0e6, 3.0e5, 1.0e6]
        .iter()
        .map(|&w| MoldableTask::new(w).expect("positive work"))
        .collect();
    let total: f64 = tasks.iter().map(|t| t.sequential_work).sum();

    println!("E8 — moldable chain allocation (6 tasks, {:.2e} s total sequential work)\n", total);
    print_header(&[
        ("workload", 12),
        ("overhead", 9),
        ("p_max", 8),
        ("allocations", 34),
        ("E[makespan]", 13),
    ]);

    let workloads: [(&str, WorkloadModel); 2] = [
        ("parallel", WorkloadModel::PerfectlyParallel),
        ("amdahl-5%", WorkloadModel::Amdahl { gamma: 0.05 }),
    ];
    let overheads = [("prop", OverheadModel::Proportional), ("const", OverheadModel::Constant)];

    for (wname, workload) in &workloads {
        for (oname, overhead) in &overheads {
            let scenario = ScalingScenario {
                lambda_proc,
                base_checkpoint: 600.0,
                base_recovery: 600.0,
                downtime: 60.0,
                workload: *workload,
                overhead: *overhead,
            };
            for &p_max in &[64u32, 1_024, 16_384] {
                let plan = plan_moldable_chain(&tasks, &scenario, p_max).expect("valid plan");
                let allocs: Vec<String> =
                    plan.allocations.iter().map(|a| a.processors.to_string()).collect();
                println!(
                    "{:>12} {:>9} {:>8} {:>34} {:>13}",
                    wname,
                    oname,
                    p_max,
                    allocs.join(","),
                    secs(plan.expected_makespan),
                );
            }
        }
    }

    println!(
        "\nExpected shape: perfectly-parallel + proportional overhead saturates \
         p_max for every task; Amdahl or constant overhead picks interior \
         allocations that stop growing once failures outweigh the speed-up, \
         and the makespan improvement from raising p_max flattens accordingly."
    );
}

//! Experiment E9 — batched λ sweeps: how the optimal policy and the fixed
//! baselines degrade as the platform failure rate grows.
//!
//! Sweeps one chain across five decades of platform failure rates with the
//! batched sweep machinery (`ckpt_expectation::sweep::LambdaSweep`): the
//! chain's λ-independent precomputation is shared by every grid point, and
//! each point re-solves Algorithm 1 on a per-rate segment-cost table
//! (`ckpt_core::analysis::lambda_sweep`). Against that re-optimised curve the
//! experiment reports
//!
//! * the **fixed** optimal schedule planned at the grid's geometric midpoint
//!   rate, evaluated (not re-optimised) at every grid rate
//!   (`analysis::schedule_lambda_sweep`) — the price of not re-planning as
//!   the platform degrades;
//! * the baselines' curves (`heuristics::baseline_lambda_sweep`): checkpoint
//!   after every task, the single mandatory final checkpoint, and
//!   Young-periodic placement whose period adapts with λ.
//!
//! A second table sweeps platform sizes for a Weibull platform through the
//! §6 exponential-equivalent batch planner
//! (`general_failures::exponential_equivalent_schedules`), which shares the
//! same per-order precomputation across all surrogate rates.
//!
//! The re-optimised sweep's grid points are independent and spread across
//! worker threads (`analysis::lambda_sweep_with_threads`, deterministic
//! contiguous chunks) — asserted below to be bit-identical at any thread
//! count.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e9_lambda_sweep`
//! (`--json` / `--json=PATH` additionally emits the key metrics).

use ckpt_bench::{print_header, random_chain_instance, JsonSummary};
use ckpt_core::{analysis, general_failures, heuristics};
use ckpt_dag::properties;
use ckpt_expectation::sweep::log_lambda_grid;
use ckpt_failure::Weibull;

fn main() {
    let (lambda_min, lambda_max, points) = (1e-7, 1e-2, 11);
    let inst = random_chain_instance(13, 64, 100.0, 1_500.0, 60.0, 90.0, 30.0, 1e-4);
    let order = properties::as_chain(inst.graph()).expect("chain");
    let grid = log_lambda_grid(lambda_min, lambda_max, points).expect("valid grid");

    println!(
        "E9 — λ sweep of a 64-task chain ({} points, λ ∈ [{lambda_min:.0e}, {lambda_max:.0e}]); \
         'fixed' is the optimum planned at λ = {:.2e} and never re-planned\n",
        points,
        grid[points / 2],
    );
    print_header(&[
        ("lambda", 9),
        ("opt ckpts", 10),
        ("optimal", 12),
        ("fixed", 8),
        ("every-task", 11),
        ("final-only", 11),
        ("young", 8),
    ]);

    let sweep = analysis::lambda_sweep(&inst, lambda_min, lambda_max, points).expect("chain");
    // The λ-parallel sweep is bit-identical whatever the worker count.
    for threads in [1usize, 3] {
        let re_run =
            analysis::lambda_sweep_with_threads(&inst, lambda_min, lambda_max, points, threads)
                .expect("chain");
        assert_eq!(sweep, re_run, "λ sweep differs at {threads} threads");
    }
    let midpoint = ckpt_core::chain_dp::optimal_chain_schedule(
        &inst.with_lambda(grid[points / 2]).expect("positive rate"),
    )
    .expect("chain");
    let fixed =
        analysis::schedule_lambda_sweep(&inst, &midpoint.schedule, &grid).expect("valid schedule");
    let baselines = heuristics::baseline_lambda_sweep(&inst, &order, &grid).expect("valid order");

    // Ratios span from 1.0 to astronomically bad (final-only on unreliable
    // platforms): switch to scientific notation once fixed-point stops fitting.
    let ratio = |v: f64| if v < 1e4 { format!("{v:.3}") } else { format!("{v:.2e}") };
    for (i, point) in sweep.iter().enumerate() {
        // Normalise everything to the re-optimised optimum at this rate.
        let norm = |v: f64| v / point.expected_makespan;
        println!(
            "{:>9.2e} {:>10} {:>12.4e} {:>8} {:>11} {:>11} {:>8}",
            point.lambda,
            point.checkpoints,
            point.expected_makespan,
            ratio(norm(fixed[i])),
            ratio(norm(baselines[i].everywhere)),
            ratio(norm(baselines[i].final_only)),
            ratio(norm(baselines[i].young)),
        );
    }

    println!(
        "\nExpected shape: every normalised column is >= 1.0; 'fixed' is exactly \
         1.0 at the rate it was planned for and drifts away from it on both \
         sides; 'final-only' explodes as λ grows while 'every-task' converges \
         to 1.0 there; Young tracks the optimum within a few percent.\n"
    );

    // --- §6 batch planning across platform sizes ----------------------------
    let proc_mtbf = 1_000_000.0;
    let law = Weibull::with_mean(0.7, proc_mtbf).expect("valid law");
    let platform_sizes = [1usize, 16, 256, 4_096, 65_536];
    let schedules =
        general_failures::exponential_equivalent_schedules(&inst, &law, &platform_sizes)
            .expect("chain");

    println!(
        "Exponential-equivalent planning across platform sizes (Weibull k = 0.7, \
         per-processor MTBF {proc_mtbf:.0e} s; one shared per-order precomputation):\n"
    );
    print_header(&[("procs", 7), ("surrogate λ", 12), ("ckpts", 6)]);
    for (&p, schedule) in platform_sizes.iter().zip(&schedules) {
        println!("{:>7} {:>12.2e} {:>6}", p, p as f64 / proc_mtbf, schedule.checkpoint_count(),);
    }
    println!(
        "\nExpected shape: the surrogate rate grows linearly with the platform \
         size, so the planned checkpoint count is non-decreasing in it."
    );

    let mut summary = JsonSummary::new("e9_lambda_sweep");
    summary.count("grid_points", points);
    for point in [&sweep[0], &sweep[points / 2], &sweep[points - 1]] {
        let key = format!("lambda_{:.0e}", point.lambda);
        summary
            .metric(format!("{key}_optimal_makespan"), point.expected_makespan)
            .count(format!("{key}_checkpoints"), point.checkpoints);
    }
    summary
        .metric(
            "fixed_vs_optimal_at_max_rate",
            fixed[points - 1] / sweep[points - 1].expected_makespan,
        )
        .metric(
            "young_vs_optimal_at_max_rate",
            baselines[points - 1].young / sweep[points - 1].expected_makespan,
        )
        .count("weibull_max_platform_checkpoints", schedules.last().unwrap().checkpoint_count());
    summary.emit();
}

//! Experiment E6 — §3 scaling scenarios: workload models × overhead models.
//!
//! Sweeps the processor count for a fixed total load under the paper's
//! workload models `W(p)` and checkpoint-overhead models `C(p)`, reporting
//! the expected time of one checkpointed execution and the optimal checkpoint
//! period at each scale.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e6_scaling_scenarios`.

use ckpt_bench::{print_header, secs};
use ckpt_expectation::exact::expected_time;
use ckpt_expectation::optimal_period::optimal_period;
use ckpt_expectation::overhead::{OverheadModel, ScalingScenario};
use ckpt_expectation::workload::WorkloadModel;

fn main() {
    let w_total = 1.0e7; // ~116 days of sequential work
    let lambda_proc = 1.0 / (10.0 * 365.0 * 86_400.0); // ten-year per-processor MTBF
    let base_cost = 600.0;

    println!(
        "E6 — platform scaling: workload models x overhead models (total load {:.1e} s)\n",
        w_total
    );

    let workloads: [(&str, WorkloadModel); 3] = [
        ("parallel", WorkloadModel::PerfectlyParallel),
        ("amdahl-1%", WorkloadModel::Amdahl { gamma: 0.01 }),
        ("kernel", WorkloadModel::NumericalKernel { gamma: 0.1 }),
    ];
    let overheads = [("prop", OverheadModel::Proportional), ("const", OverheadModel::Constant)];

    print_header(&[
        ("workload", 10),
        ("overhead", 9),
        ("p", 8),
        ("W(p)", 12),
        ("C(p)", 9),
        ("lambda(p)", 12),
        ("E[T] one ckpt", 14),
        ("opt period", 12),
    ]);

    for (wname, workload) in &workloads {
        for (oname, overhead) in &overheads {
            let scenario = ScalingScenario {
                lambda_proc,
                base_checkpoint: base_cost,
                base_recovery: base_cost,
                downtime: 60.0,
                workload: *workload,
                overhead: *overhead,
            };
            for &p in &[16u32, 256, 4_096, 65_536] {
                let params = scenario.instantiate(w_total, p).expect("valid scenario");
                let period = optimal_period(
                    params.checkpoint(),
                    params.downtime(),
                    params.recovery(),
                    params.lambda(),
                )
                .expect("valid parameters");
                println!(
                    "{:>10} {:>9} {:>8} {:>12} {:>9} {:>12.3e} {:>14} {:>12}",
                    wname,
                    oname,
                    p,
                    secs(params.work()),
                    secs(params.checkpoint()),
                    params.lambda(),
                    secs(expected_time(&params)),
                    secs(period.period),
                );
            }
        }
    }

    println!(
        "\nExpected shape: with proportional overhead the expected time keeps \
         shrinking with p for parallel work; with constant overhead (or a \
         sequential fraction) it reaches a minimum and then grows again as \
         failures at scale dominate — and the optimal period shrinks as λ(p) \
         grows."
    );
}

//! Experiment E5 — the Proposition 2 reduction in action.
//!
//! Generates families of YES 3-PARTITION instances (and one NO instance),
//! reduces them to scheduling instances, and reports the optimal expected
//! makespan against the decision bound `K`: YES instances meet `K` exactly,
//! NO instances exceed it.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e5_np_reduction`.

use ckpt_bench::{pct, print_header, secs};
use ckpt_core::brute_force;
use ckpt_core::three_partition::ThreePartitionInstance;

fn main() {
    println!("E5 — 3-PARTITION reduction: optimal expected makespan vs the bound K\n");
    print_header(&[
        ("instance", 14),
        ("n", 3),
        ("T", 6),
        ("bound K", 12),
        ("optimal E", 12),
        ("E/K - 1", 10),
        ("answer", 8),
    ]);

    // YES instances of growing size (kept within brute-force reach: 3n <= 9).
    for (label, n, target, seed) in
        [("yes-a", 2usize, 96u64, 1u64), ("yes-b", 2, 120, 5), ("yes-c", 3, 96, 9)]
    {
        let inst =
            ThreePartitionInstance::generate_yes(n, target, seed).expect("valid generator input");
        let red = inst.reduce().expect("reduction");
        let best = brute_force::optimal_schedule(&red.instance).expect("within brute-force reach");
        let ratio = best.expected_makespan / red.bound - 1.0;
        println!(
            "{:>14} {:>3} {:>6} {:>12} {:>12} {:>10} {:>8}",
            label,
            n,
            target,
            secs(red.bound),
            secs(best.expected_makespan),
            pct(ratio),
            if ratio.abs() < 1e-9 { "YES" } else { "NO" }
        );
    }

    // A certified NO instance.
    let no =
        ThreePartitionInstance::new(vec![26, 26, 26, 40, 41, 41], 100).expect("valid instance");
    assert!(no.solve_exact().expect("small").is_none());
    let red = no.reduce().expect("reduction");
    let best = brute_force::optimal_schedule(&red.instance).expect("within reach");
    let ratio = best.expected_makespan / red.bound - 1.0;
    println!(
        "{:>14} {:>3} {:>6} {:>12} {:>12} {:>10} {:>8}",
        "no-a",
        2,
        100,
        secs(red.bound),
        secs(best.expected_makespan),
        pct(ratio),
        if ratio.abs() < 1e-9 { "YES" } else { "NO" }
    );

    println!(
        "\nExpected shape: the three YES rows report E/K − 1 = 0.00% (the bound \
         is met exactly by grouping tasks into batches of total weight T); the \
         NO row reports a strictly positive gap."
    );
}

//! Experiment E4 — independent tasks: heuristics vs the exhaustive optimum.
//!
//! Proposition 2 makes the independent-task problem strongly NP-complete, so
//! this experiment (i) measures the optimality gap of the practical heuristic
//! on small instances where exhaustive search is possible, and (ii) shows the
//! heuristic scaling to thousands of tasks where exhaustive search is not.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e4_independent_tasks`.

use std::time::Instant;

use ckpt_bench::{pct, print_header, random_independent_instance, secs};
use ckpt_core::{brute_force, evaluate, heuristics, Schedule};

fn main() {
    println!("E4 — independent tasks: heuristic vs exhaustive optimum\n");

    // Part 1: optimality gap on small instances.
    print_header(&[("seed", 6), ("n", 4), ("exhaustive", 14), ("heuristic", 14), ("gap", 9)]);
    for seed in 0..6u64 {
        let inst = random_independent_instance(seed, 7, 200.0, 3_000.0, 150.0, 1.0 / 4_000.0);
        let exact = brute_force::optimal_schedule(&inst).expect("small instance");
        let heuristic = heuristics::independent_tasks_heuristic(&inst, 200).expect("independent");
        println!(
            "{:>6} {:>4} {:>14} {:>14} {:>9}",
            seed,
            inst.task_count(),
            secs(exact.expected_makespan),
            secs(heuristic.expected_makespan),
            pct(heuristic.expected_makespan / exact.expected_makespan - 1.0),
        );
    }

    // Part 2: heuristic at scale (no exhaustive reference).
    println!();
    print_header(&[
        ("n", 6),
        ("time (ms)", 11),
        ("ckpts", 7),
        ("heuristic", 14),
        ("every-task", 14),
        ("final-only", 14),
    ]);
    for &n in &[100usize, 500, 1_000, 3_000] {
        let inst = random_independent_instance(99, n, 200.0, 3_000.0, 150.0, 1.0 / 20_000.0);
        let start = Instant::now();
        // Local-search passes kept small at scale; the placement DP dominates anyway.
        let heuristic = heuristics::independent_tasks_heuristic(&inst, 2).expect("independent");
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        let order = heuristics::lpt_order(&inst).unwrap();
        let everywhere = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
        let final_only = Schedule::checkpoint_final_only(&inst, order).unwrap();
        println!(
            "{:>6} {:>11.1} {:>7} {:>14} {:>14} {:>14}",
            n,
            elapsed,
            heuristic.schedule.checkpoint_count(),
            secs(heuristic.expected_makespan),
            secs(evaluate::expected_makespan(&inst, &everywhere).unwrap()),
            secs(evaluate::expected_makespan(&inst, &final_only).unwrap()),
        );
    }

    println!(
        "\nExpected shape: the gap in part 1 stays within a couple of percent; \
         in part 2 the heuristic beats both trivial baselines and the \
         final-only baseline degrades catastrophically as n grows."
    );
}

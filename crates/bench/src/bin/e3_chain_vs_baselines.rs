//! Experiment E3 — value of optimal checkpoint placement on chains.
//!
//! For chains of varying length and platforms of varying reliability,
//! compares the expected makespan of the Algorithm 1 optimum against the
//! periodic and trivial baselines, normalised to the optimum (1.00 = optimal).
//!
//! Run with `cargo run --release -p ckpt-bench --bin e3_chain_vs_baselines`.

use ckpt_bench::{print_header, random_chain_instance};
use ckpt_core::{chain_dp, evaluate, heuristics, Schedule};
use ckpt_dag::properties;

fn main() {
    println!("E3 — optimal chain placement vs baselines (values normalised to the optimum)\n");
    print_header(&[
        ("n", 5),
        ("MTBF", 9),
        ("opt ckpts", 10),
        ("optimal", 9),
        ("every-task", 11),
        ("final-only", 11),
        ("every-5", 9),
        ("young", 9),
    ]);

    for &n in &[10usize, 50, 200, 1_000] {
        for &mtbf in &[500_000.0, 50_000.0, 5_000.0] {
            let inst = random_chain_instance(7, n, 100.0, 1_500.0, 60.0, 90.0, 30.0, 1.0 / mtbf);
            let order = properties::as_chain(inst.graph()).expect("chain");
            let dp = chain_dp::optimal_chain_schedule(&inst).expect("chain");
            let norm = |schedule: &Schedule| {
                evaluate::expected_makespan(&inst, schedule).expect("valid schedule")
                    / dp.expected_makespan
            };
            let everywhere = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
            let final_only = Schedule::checkpoint_final_only(&inst, order.clone()).unwrap();
            let every5 = heuristics::checkpoint_every_k(&inst, order.clone(), 5).unwrap();
            let young = heuristics::young_periodic_schedule(&inst, order.clone()).unwrap();
            println!(
                "{:>5} {:>9} {:>10} {:>9.3} {:>11.3} {:>11.3} {:>9.3} {:>9.3}",
                n,
                mtbf,
                dp.schedule.checkpoint_count(),
                1.0,
                norm(&everywhere),
                norm(&final_only),
                norm(&every5),
                norm(&young),
            );
        }
    }

    println!(
        "\nExpected shape: every baseline is >= 1.0; 'final-only' blows up on \
         unreliable platforms (large n, small MTBF), 'every-task' is wasteful \
         on reliable ones, Young-periodic tracks the optimum within a few \
         percent, and the optimum's checkpoint count grows as reliability drops."
    );
}

//! Experiment E13 — cluster policies under correlated failures: replication,
//! migration and graceful degradation on a fault-injected machine pool.
//!
//! The chain experiments ask *when to checkpoint* on one machine; this one
//! lifts the model to a pool executing a batch of chain jobs whose machines
//! fail both independently (per-machine Exponential) and **together**
//! (Poisson shock bursts striking a random subset of the pool within a
//! configurable burst width, followed by a long repair). Four baseline
//! policies run on identical per-trial failure streams:
//!
//! * `checkpoint-only` — every failure waits out the repair in place;
//! * `always-migrate` — every failure re-queues the job on a healthy machine
//!   (paying a migration overhead);
//! * `replicate-top-2` — the two largest jobs keep a warm replica (inflated
//!   checkpoints, one reserved machine each) and fail over when it survives;
//! * `setlur` — replicate the largest quarter of the batch and checkpoint
//!   those jobs more sparsely (replication substitutes for checkpoints).
//!
//! The burst width is the experiment's x-axis: at width 0 a shock fells its
//! victims simultaneously — a replica bought against the burst dies *with*
//! its primary — while wider bursts stagger the hits and let failover win.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e13_cluster`
//! (`--json` / `--json=PATH` additionally emits the key metrics;
//! `--trace=PATH` dumps one full trial's simulated event timeline as JSONL).

use std::sync::Arc;

use ckpt_adaptive::{ChainSpec, StaticPlan};
use ckpt_bench::{print_header, JsonSummary};
use ckpt_cluster::{
    compare_baselines, run_cluster, run_cluster_monte_carlo, run_cluster_traced, BaselinePolicy,
    ClusterComparison, ClusterConfig, ClusterJob, ClusterRepair, ClusterScenario,
    ExponentialMachineSource,
};
use ckpt_failure::{Exponential, FailureDistribution, Pcg64, RandomSource, ShockConfig};
use ckpt_simulator::{simulate_policy, ChainTask, ExponentialStream};
use ckpt_telemetry::{DigestSink, JsonlSink, TeeSink};

/// Machines in the pool.
const MACHINES: usize = 6;
/// Jobs in the batch.
const JOBS: usize = 4;
/// Per-machine natural MTBF (rare independent failures).
const NATURAL_MTBF: f64 = 30_000.0;
/// Shock arrival rate (correlated bursts).
const SHOCK_RATE: f64 = 1.0 / 900.0;
/// Probability a shock strikes each machine.
const FAN_OUT: f64 = 0.7;
/// Machine repair interval after any failure.
const REPAIR: f64 = 1_200.0;
/// Burst widths compared (the x-axis of the replication claim).
const BURST_WIDTHS: [f64; 3] = [0.0, 150.0, 1_200.0];
/// Monte-Carlo trials per policy and scenario.
const TRIALS: usize = 600;

/// The failure rate jobs plan their checkpoints for: natural rate plus the
/// shock rate thinned by the fan-out.
const PLANNING_RATE: f64 = 1.0 / NATURAL_MTBF + SHOCK_RATE * FAN_OUT;

fn job_mix() -> Vec<ChainSpec> {
    // Eight heterogeneous chains, ~600-1900 s of work each: enough spread
    // that ranking jobs by size (replicate-top-k, Setlur) is meaningful.
    let mut rng = Pcg64::seed_from_u64(0xE13);
    (0..JOBS)
        .map(|_| {
            let tasks = 8 + (rng.next_u64() % 5) as usize;
            let works: Vec<f64> = (0..tasks).map(|_| 120.0 + rng.next_f64() * 120.0).collect();
            let ckpts: Vec<f64> = (0..tasks).map(|_| 10.0 + rng.next_f64() * 10.0).collect();
            let recs: Vec<f64> = (0..tasks).map(|_| 15.0 + rng.next_f64() * 15.0).collect();
            ChainSpec::new(&works, &ckpts, &recs, 20.0, 5.0).expect("valid chain parameters")
        })
        .collect()
}

fn config() -> ClusterConfig {
    ClusterConfig::default()
        .with_migration_overhead(150.0)
        .expect("valid overhead")
        .with_failover_overhead(10.0)
        .expect("valid overhead")
        .with_replication_checkpoint_factor(1.3)
        .expect("valid factor")
        .with_retry_budget(4)
        .with_backoff(30.0, 240.0)
        .expect("valid backoff")
}

fn scenario(burst_width: f64, threads: usize) -> ClusterScenario {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(NATURAL_MTBF).expect("valid MTBF"));
    ClusterScenario::new(MACHINES, law, PLANNING_RATE, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(SHOCK_RATE, FAN_OUT, burst_width).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(REPAIR))
        .expect("valid repair")
        .with_config(config())
        .with_trials(TRIALS)
        .with_seed(0x5EED13)
        .with_threads(threads)
}

fn baselines() -> Vec<(&'static str, BaselinePolicy)> {
    vec![
        ("checkpoint-only", BaselinePolicy::CheckpointOnly),
        ("always-migrate", BaselinePolicy::AlwaysMigrate),
        ("replicate-top-2", BaselinePolicy::ReplicateTopK { k: 2 }),
        ("setlur", BaselinePolicy::Setlur { replicate_fraction: 0.25, rate_factor: 0.6 }),
    ]
}

fn main() {
    println!(
        "E13 — cluster policies under correlated failures\n\
         ({MACHINES} machines, {JOBS} chain jobs, natural MTBF {NATURAL_MTBF:.0} s per machine,\n\
         shocks every {:.0} s striking each machine with p = {FAN_OUT}, repair {REPAIR:.0} s;\n\
         {TRIALS} paired trials per policy; makespan = completion of the last job)\n",
        1.0 / SHOCK_RATE,
    );
    print_header(&[
        ("burst width", 12),
        ("policy", 16),
        ("makespan", 10),
        ("ci95", 8),
        ("job mean", 10),
        ("wait", 8),
        ("util", 6),
        ("migr", 6),
        ("fails", 6),
    ]);

    let stats_start = ckpt_failure::stats::snapshot();
    let mut summary = JsonSummary::new("e13_cluster");
    summary
        .count("machines", MACHINES)
        .count("jobs", JOBS)
        .count("trials", TRIALS)
        .metric("planning_rate", PLANNING_RATE);

    let mut advantages = Vec::new();
    for &width in &BURST_WIDTHS {
        let cmp = compare_baselines(&scenario(width, 0), &baselines()).expect("cluster run");
        let key = format!("w{width:.0}");
        for entry in &cmp.entries {
            let o = &entry.outcome;
            println!(
                "{:>12.0} {:>16} {:>10.1} {:>8.1} {:>10.1} {:>8.1} {:>5.1}% {:>6.2} {:>6.2}",
                width,
                entry.name,
                o.makespan.mean,
                o.makespan.ci95_half_width,
                o.job_makespan.mean,
                o.waiting.mean,
                100.0 * o.utilisation.mean,
                o.mean_migrations,
                o.mean_failures,
            );
            summary.metric(
                format!("{key}_{}_makespan", entry.name.replace('-', "_")),
                o.makespan.mean,
            );
        }
        println!();
        let migrate = mean_of(&cmp, "always-migrate");
        let replicate = mean_of(&cmp, "replicate-top-2");
        let checkpoint_only = mean_of(&cmp, "checkpoint-only");
        // Claim (i): under correlated failures, mobility strictly beats
        // sitting out the repair.
        assert!(
            migrate < checkpoint_only,
            "width {width}: always-migrate {migrate} must beat checkpoint-only {checkpoint_only}"
        );
        assert!(
            replicate < checkpoint_only,
            "width {width}: replicate-top-2 {replicate} must beat checkpoint-only \
             {checkpoint_only}"
        );
        let advantage = migrate - replicate;
        summary.metric(format!("{key}_replication_advantage"), advantage);
        advantages.push(advantage);
    }

    // Claim (ii): replication's edge over migration widens with the burst
    // width — simultaneous shocks kill the replica with its primary, wide
    // bursts leave it standing as a failover target.
    assert!(
        advantages.windows(2).all(|w| w[0] < w[1]),
        "replication advantage must widen with the burst width: {advantages:?}"
    );
    println!(
        "Replication advantage over migration by burst width: \
         {:.1} / {:.1} / {:.1} s (strictly widening).\n",
        advantages[0], advantages[1], advantages[2],
    );

    let waiting = graceful_degradation_check(&mut summary);
    degenerate_chain_check();
    determinism_check();
    trace_dump_if_requested();

    println!(
        "Acceptance (asserted): at every burst width, always-migrate and\n\
         replicate-top-2 strictly beat checkpoint-only on mean makespan; the\n\
         replication advantage widens strictly with the burst width; full-pool\n\
         shocks only queue jobs (mean queue wait {waiting:.0} s, zero trial errors);\n\
         a single-machine cluster matches the chain engine seed for seed; and\n\
         every comparison is bit-identical at 1/2/3/8 threads."
    );
    // The injector's process-wide counters, as a delta over the whole
    // experiment: both golden-test invocations execute identical work, so
    // the delta is deterministic even though the atomics are cumulative.
    let faults = ckpt_failure::stats::snapshot().since(&stats_start);
    summary
        .count("failure_shocks_total", faults.shocks as usize)
        .count("failure_shock_hits_total", faults.shock_hits as usize)
        .count("failure_repairs_total", faults.repairs as usize);
    summary.emit();
}

fn mean_of(cmp: &ClusterComparison, name: &str) -> f64 {
    cmp.entries
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("missing policy {name}"))
        .outcome
        .makespan
        .mean
}

/// Claim (iii): shocks that strike the whole pool at once leave no healthy
/// machine — jobs must queue and finish after the repair, with zero errors.
fn graceful_degradation_check(summary: &mut JsonSummary) -> f64 {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(NATURAL_MTBF).expect("valid MTBF"));
    let scenario = ClusterScenario::new(3, law, PLANNING_RATE, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 800.0, 1.0, 0.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(600.0))
        .expect("valid repair")
        .with_config(config())
        .with_trials(200)
        .with_seed(0x5EED13)
        .with_threads(0);
    let outcome = run_cluster_monte_carlo(&scenario, || Box::new(BaselinePolicy::AlwaysMigrate))
        .expect("full-pool outages must queue jobs, not error");
    assert!(
        outcome.waiting.mean > 0.0,
        "full-pool outages must produce queue waiting, got {}",
        outcome.waiting.mean
    );
    assert!(
        outcome.max_queue_depth > 1,
        "full-pool outages must stack the ready queue, got depth {}",
        outcome.max_queue_depth
    );
    println!(
        "Graceful degradation: 3-machine pool, shocks strike every machine at once\n\
         (width 0, repair 600 s): all {} trials completed, mean queue wait {:.0} s,\n\
         peak queue depth {}.\n",
        outcome.trials, outcome.waiting.mean, outcome.max_queue_depth,
    );
    summary.metric("degradation_mean_waiting", outcome.waiting.mean);
    summary.count("degradation_max_queue_depth", outcome.max_queue_depth);
    outcome.waiting.mean
}

/// Claim (iv): a one-machine cluster over the chain driver's exact stream is
/// the chain engine, bitwise.
fn degenerate_chain_check() {
    let tasks: Vec<ChainTask> = [140.0, 90.0, 210.0, 60.0]
        .iter()
        .map(|&w| ChainTask::new(w, 12.0, 18.0).expect("valid task"))
        .collect();
    let plan = vec![true, false, true, true];
    for seed in 0..25u64 {
        let mut stream = ExponentialStream::new(1.0 / 400.0, seed);
        let mut replay = StaticPlan::new(plan.clone());
        let expected =
            simulate_policy(&tasks, 18.0, 5.0, &mut replay, &mut stream).expect("chain run");

        let job = ClusterJob::new(tasks.clone(), 18.0, 5.0, plan.clone()).expect("valid job");
        let mut source = ExponentialMachineSource::new(1.0 / 400.0, &[seed]);
        let mut policy = BaselinePolicy::CheckpointOnly;
        let out = run_cluster(&[job], 1, &mut source, &mut policy, &ClusterConfig::default())
            .expect("cluster run");
        assert_eq!(out.jobs[0].record, expected.record, "seed {seed}");
        assert_eq!(out.jobs[0].checkpoints, expected.checkpoints, "seed {seed}");
        assert_eq!(out.jobs[0].decisions, expected.decisions, "seed {seed}");
    }
    println!(
        "Degeneracy: single-machine cluster vs chain engine over 25 seeds — \
         bitwise identical.\n"
    );
}

/// `--trace=PATH`: replays trial 0 of the middle burst scenario under the
/// replicate-top-2 policy with a JSONL sink attached and writes the full
/// sim-domain event timeline (dispatches, shocks-turned-failures, replica
/// losses, migrations, failovers, completions) to `PATH` — one JSON object
/// per line. A digest sink tees off the same stream, so the reported FNV-1a
/// digest can be compared across runs and machines: the timeline is a pure
/// function of the scenario seed.
fn trace_dump_if_requested() {
    for arg in std::env::args().skip(1) {
        let Some(path) = arg.strip_prefix("--trace=") else { continue };
        let sc = scenario(BURST_WIDTHS[1], 1);
        let mut admission = BaselinePolicy::ReplicateTopK { k: 2 };
        let jobs = sc.build_jobs(&mut admission).expect("job mix");
        let mut injector = sc.trial_injector(0).expect("trial injector");
        let mut policy = BaselinePolicy::ReplicateTopK { k: 2 };
        let file = std::fs::File::create(path)
            .unwrap_or_else(|error| panic!("cannot create trace file {path}: {error}"));
        let mut jsonl = JsonlSink::new(std::io::BufWriter::new(file));
        let mut digest = DigestSink::new();
        let mut tee = TeeSink::new(&mut jsonl, &mut digest);
        run_cluster_traced(&jobs, MACHINES, &mut injector, &mut policy, &config(), &mut tee)
            .expect("traced trial");
        use std::io::Write as _;
        let mut writer = jsonl.finish().expect("flush trace file");
        writer.flush().expect("flush trace file");
        println!(
            "Trace: wrote {} sim-domain events of trial 0 (burst width {}) to {path}\n\
             (timeline digest {}).\n",
            digest.sim_events(),
            BURST_WIDTHS[1],
            digest.hex(),
        );
    }
}

/// Re-runs the middle burst scenario at several worker counts and demands
/// byte-identical per-trial samples for every policy.
fn determinism_check() {
    let reference =
        compare_baselines(&scenario(BURST_WIDTHS[1], 1), &baselines()).expect("cluster run");
    for threads in [2usize, 3, 8] {
        let other = compare_baselines(&scenario(BURST_WIDTHS[1], threads), &baselines())
            .expect("cluster run");
        for (a, b) in reference.entries.iter().zip(&other.entries) {
            assert_eq!(
                a.outcome.samples, b.outcome.samples,
                "policy {} differs at {threads} threads",
                a.name
            );
        }
    }
    println!(
        "Determinism: burst-width {} scenario re-run at 1/2/3/8 threads — bit-identical.\n",
        BURST_WIDTHS[1]
    );
}

//! Experiment E16 — two-level checkpoint storage: joint `(position, level)`
//! planning with a slot-bounded fast tier.
//!
//! The paper prices every checkpoint on a single medium; real platforms
//! write to a hierarchy (burst buffer vs parallel file system) whose tiers
//! differ in write cost, read cost and capacity. This experiment exercises
//! the levelled planning stack
//! (`ckpt_expectation::storage` → `ckpt_core::chain_dp::optimal_levelled_schedule`)
//! along three walls:
//!
//! * **Exhaustive optimality** — on small heterogeneous chains the levelled
//!   DP matches a brute-force search over *all* position × level
//!   assignments to `1e-10` relative error, and with a single unit-factor
//!   level it collapses **bitwise** to the flat Algorithm 1 solver;
//! * **Slot monotonicity** — growing the fast tier's slot budget never
//!   worsens the planned makespan (plan-set inclusion), and the marginal
//!   value of a slot shrinks as the budget grows;
//! * **λ sweep** — the two-level advantage over single-level planning
//!   across five decades of failure rates, each grid point re-planned from
//!   scratch; the sweep is spread across worker threads in deterministic
//!   contiguous chunks and asserted **bit-identical at 1, 2, 3 and 8
//!   threads**.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e16_storage`
//! (`--json` / `--json=PATH` additionally emits the key metrics).

use ckpt_bench::testgen::heterogeneous_chain_instance;
use ckpt_bench::{print_header, JsonSummary};
use ckpt_core::brute_force::optimal_levelled_checkpoints_for_order;
use ckpt_core::chain_dp::{optimal_chain_schedule, optimal_levelled_schedule};
use ckpt_core::parallel::chunked_map_with;
use ckpt_core::ProblemInstance;
use ckpt_dag::properties;
use ckpt_expectation::storage::{StorageLevel, StorageLevels};
use ckpt_expectation::sweep::log_lambda_grid;

/// The canonical E16 hierarchy: a burst-buffer tier writing 4× and reading
/// 5× cheaper than the paper's medium, holding at most `slots` checkpoints.
fn two_level(slots: usize) -> StorageLevels {
    StorageLevels::two_level(
        StorageLevel::new(0.25, 0.2).expect("positive factors").with_slots(slots),
        StorageLevel::new(1.0, 1.0).expect("positive factors"),
    )
    .expect("one bounded level")
}

/// One λ-sweep grid point: flat vs two-level optimum, re-planned at `lambda`.
#[derive(Debug, Clone, PartialEq)]
struct SweepPoint {
    lambda: f64,
    flat: f64,
    levelled: f64,
    fast_checkpoints: usize,
    total_checkpoints: usize,
}

fn sweep_levels(
    inst: &ProblemInstance,
    grid: &[f64],
    slots: usize,
    threads: usize,
) -> Vec<SweepPoint> {
    chunked_map_with(
        grid,
        threads,
        || (),
        |(), _, &lambda| {
            let at_rate = inst.with_lambda(lambda).expect("positive rate");
            let flat = optimal_chain_schedule(&at_rate).expect("chain");
            let levelled = optimal_levelled_schedule(&at_rate, &two_level(slots)).expect("chain");
            SweepPoint {
                lambda,
                flat: flat.expected_makespan,
                levelled: levelled.expected_makespan,
                fast_checkpoints: levelled.checkpoints.iter().filter(|&&(_, l)| l == 0).count(),
                total_checkpoints: levelled.checkpoints.len(),
            }
        },
    )
}

fn main() {
    let mut summary = JsonSummary::new("e16_storage");

    // --- Wall 1: exhaustive cross-check + bitwise collapse ------------------
    println!(
        "E16 — two-level checkpoint storage: (position, level) planning with a \
         slot-bounded fast tier\n"
    );
    println!(
        "Exhaustive wall: levelled DP vs brute force over all position x level \
         assignments (small heterogeneous chains):\n"
    );
    print_header(&[
        ("seed", 5),
        ("n", 3),
        ("lambda", 9),
        ("dp", 13),
        ("exhaustive", 13),
        ("gap", 9),
    ]);
    let mut max_gap = 0.0f64;
    let mut exhaustive_candidates = 0u64;
    for seed in [1u64, 2, 3] {
        for (n, lambda) in [(5usize, 1e-3), (6, 2e-4), (7, 5e-3)] {
            let inst = heterogeneous_chain_instance(seed, n, lambda);
            let order = properties::as_chain(inst.graph()).expect("chain");
            let levels = two_level(2);
            let dp = optimal_levelled_schedule(&inst, &levels).expect("chain");
            let brute = optimal_levelled_checkpoints_for_order(&inst, &order, &levels)
                .expect("small instance");
            let gap =
                (dp.expected_makespan - brute.expected_makespan).abs() / brute.expected_makespan;
            assert!(
                gap < 1e-10,
                "levelled DP missed the exhaustive optimum: {} vs {} (seed {seed}, n {n})",
                dp.expected_makespan,
                brute.expected_makespan
            );
            max_gap = max_gap.max(gap);
            exhaustive_candidates += brute.candidates_evaluated;
            println!(
                "{:>5} {:>3} {:>9.0e} {:>13.6e} {:>13.6e} {:>9.2e}",
                seed, n, lambda, dp.expected_makespan, brute.expected_makespan, gap
            );
        }
    }

    // A single unit-factor level must collapse bitwise to the flat solver.
    let collapse_inst = heterogeneous_chain_instance(17, 48, 1e-3);
    let flat = optimal_chain_schedule(&collapse_inst).expect("chain");
    let collapsed =
        optimal_levelled_schedule(&collapse_inst, &StorageLevels::single()).expect("chain");
    assert_eq!(
        collapsed.expected_makespan.to_bits(),
        flat.expected_makespan.to_bits(),
        "single-level collapse is not bitwise: {} vs {}",
        collapsed.expected_makespan,
        flat.expected_makespan
    );
    println!(
        "\nExpected shape: every gap is < 1e-10; with one unit-factor level the \
         levelled DP reproduces Algorithm 1 bit for bit (checked on a 48-task \
         chain).\n"
    );
    summary.metric("exhaustive_max_gap", max_gap);
    summary.count("exhaustive_candidates", exhaustive_candidates as usize);
    summary.count("collapse_bitwise_checks_passed", 1);

    // --- Wall 2: slot monotonicity ------------------------------------------
    let inst = heterogeneous_chain_instance(11, 24, 1e-3);
    let max_slots = 8usize;
    println!(
        "Slot monotonicity: a 24-task chain, fast tier growing from 0 to \
         {max_slots} slots:\n"
    );
    print_header(&[("slots", 6), ("makespan", 13), ("fast ckpts", 11), ("vs 0 slots", 11)]);
    let mut by_slots = Vec::with_capacity(max_slots + 1);
    for slots in 0..=max_slots {
        let sol = optimal_levelled_schedule(&inst, &two_level(slots)).expect("chain");
        let fast = sol.checkpoints.iter().filter(|&&(_, l)| l == 0).count();
        by_slots.push((sol.expected_makespan, fast));
        println!(
            "{:>6} {:>13.6e} {:>11} {:>10.3}%",
            slots,
            sol.expected_makespan,
            fast,
            100.0 * (1.0 - sol.expected_makespan / by_slots[0].0),
        );
    }
    for (slots, pair) in by_slots.windows(2).enumerate() {
        assert!(
            pair[1].0 <= pair[0].0 + 1e-12,
            "an extra fast slot worsened the plan at {} -> {} slots: {} vs {}",
            slots,
            slots + 1,
            pair[0].0,
            pair[1].0
        );
    }
    println!(
        "\nExpected shape: the makespan is non-increasing in the slot budget \
         (every plan feasible with s slots is feasible with s + 1) and the \
         marginal gain of a slot shrinks.\n"
    );
    summary
        .metric("slots_0_makespan", by_slots[0].0)
        .metric("slots_4_makespan", by_slots[4].0)
        .metric("slots_8_makespan", by_slots[max_slots].0)
        .metric("slots_8_improvement", 1.0 - by_slots[max_slots].0 / by_slots[0].0)
        .count("slots_8_fast_checkpoints", by_slots[max_slots].1);

    // --- Wall 3: two-level advantage across a λ sweep -----------------------
    let (lambda_min, lambda_max, points) = (1e-6, 1e-2, 9);
    let grid = log_lambda_grid(lambda_min, lambda_max, points).expect("valid grid");
    let slots = 4usize;
    let sweep = sweep_levels(&inst, &grid, slots, 1);
    // The grid points are independent pure solves: the deterministic
    // contiguous-chunk scatter is bit-identical at any worker count.
    for threads in [2usize, 3, 8] {
        let re_run = sweep_levels(&inst, &grid, slots, threads);
        assert_eq!(sweep, re_run, "levelled λ sweep differs at {threads} threads");
    }

    println!(
        "Two-level vs single-level planning across λ (fast tier: 4x cheaper \
         writes, 5x cheaper reads, {slots} slots):\n"
    );
    print_header(&[
        ("lambda", 9),
        ("flat", 13),
        ("two-level", 13),
        ("gain", 8),
        ("fast/total", 11),
    ]);
    for point in &sweep {
        assert!(
            point.levelled <= point.flat + 1e-12,
            "the hierarchy must not hurt: {} vs {} at λ = {}",
            point.levelled,
            point.flat,
            point.lambda
        );
        println!(
            "{:>9.2e} {:>13.6e} {:>13.6e} {:>7.3}% {:>8}/{:<2}",
            point.lambda,
            point.flat,
            point.levelled,
            100.0 * (1.0 - point.levelled / point.flat),
            point.fast_checkpoints,
            point.total_checkpoints,
        );
    }
    println!(
        "\nExpected shape: the gain is small where failures are rare (few \
         checkpoints, mostly the mandatory final one) and grows with λ as the \
         plan leans on cheap fast-tier checkpoints — saturating once the slot \
         budget binds.\n"
    );
    let mid = points / 2;
    summary
        .count("sweep_points", points)
        .metric("sweep_gain_at_min_lambda", 1.0 - sweep[0].levelled / sweep[0].flat)
        .metric("sweep_gain_at_mid_lambda", 1.0 - sweep[mid].levelled / sweep[mid].flat)
        .metric(
            "sweep_gain_at_max_lambda",
            1.0 - sweep[points - 1].levelled / sweep[points - 1].flat,
        )
        .count("sweep_fast_checkpoints_at_max_lambda", sweep[points - 1].fast_checkpoints)
        .count("sweep_total_checkpoints_at_max_lambda", sweep[points - 1].total_checkpoints);
    summary.emit();
}

//! Experiment E15 — the telemetry subsystem's two contracts, measured and
//! asserted end to end:
//!
//! 1. **Observation is free of side effects.** Every instrumented engine
//!    run — a planner-service batch stream, a cluster Monte-Carlo, an
//!    adaptive-policy Monte-Carlo — is bitwise identical to its
//!    uninstrumented twin, at 1, 2, 3 and 8 worker threads. Counters,
//!    shard-merged histograms and trace sinks observe the computation; they
//!    never participate in it.
//! 2. **Observation is cheap.** A live trace sink (FNV-1a digest over the
//!    serialised event stream — strictly more work than a ring buffer)
//!    costs ≤ 5% over the untraced engine, and the default no-op sink is
//!    free, because every emission site guards on `sink.enabled()`.
//!
//! The deterministic surface (`--json` / `--json=PATH`) carries the service
//! and solver counters, the cluster metric registry's totals and makespan
//! quantiles, the adaptive re-plan counters and the **sim-time trace
//! digest** — all byte-compared across runs by the golden-snapshot suite.
//! Wall-clock measurements live under `timing_` keys.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e15_telemetry`.

use std::sync::Arc;
use std::time::Instant;

use ckpt_adaptive::harness::{compare_policies, EvaluationConfig, TruthModel};
use ckpt_adaptive::ChainSpec;
use ckpt_bench::{print_header, testgen, JsonSummary};
use ckpt_cluster::{
    run_cluster, run_cluster_monte_carlo, run_cluster_monte_carlo_with_metrics, run_cluster_traced,
    BaselinePolicy, ClusterConfig, ClusterPolicy, ClusterRepair, ClusterScenario,
};
use ckpt_core::solver_stats;
use ckpt_failure::{Exponential, FailureDistribution, Pcg64, RandomSource, ShockConfig};
use ckpt_service::{PlanInstance, PlanRequest, PlanResponse, Planner, RateBucketing};
use ckpt_telemetry::{
    prometheus_text, DigestSink, MetricsRegistry, NoopSink, RingBufferSink, TelemetrySink,
};

const SEED: u64 = 15;
/// Service stream: shapes, requests, batch size (a compact E14).
const SHAPES: usize = 16;
const REQUESTS: usize = 1_500;
const BATCH: usize = 128;
/// Cluster scenario: pool size, job count, Monte-Carlo trials.
const MACHINES: usize = 6;
const JOBS: usize = 4;
const TRIALS: usize = 120;
const MTBF: f64 = 8_000.0;
/// Overhead measurement: engine runs per timing sample, samples per
/// variant, and the asserted ceiling for the live-sink ratio. The measured
/// trial uses its own heavier job mix ([`overhead_job_mix`]) so the ratio
/// reflects tracing a production-sized trial, where engine work dominates,
/// rather than a micro-trial where per-event serialisation would.
const OVERHEAD_JOBS: usize = 3;
const OVERHEAD_MTBF: f64 = 12_000_000.0;
const OVERHEAD_RUNS: usize = 20;
const OVERHEAD_SAMPLES: usize = 7;
const OVERHEAD_CEILING: f64 = 1.05;
const OVERHEAD_ATTEMPTS: usize = 5;

fn bucketing() -> RateBucketing {
    RateBucketing::log_grid(1e-6, 1e-3, 13).expect("valid grid")
}

/// A Zipf-popular request stream with ~20% mid-run re-plans (E14's shape).
fn service_stream() -> Vec<PlanRequest> {
    let shapes: Vec<PlanInstance> = (0..SHAPES)
        .map(|k| {
            let n = 16 + (k * 29) % 180;
            let problem = testgen::heterogeneous_chain_instance(SEED ^ ((k as u64) << 18), n, 1e-4);
            PlanInstance::from_chain_instance(&problem).expect("chain instance")
        })
        .collect();
    let ranks = testgen::zipf_ranks(SEED, SHAPES, 1.1, REQUESTS);
    let mut rng = Pcg64::seed_from_u64(SEED);
    let rates = [3e-5, 1e-4, 3e-4];
    ranks
        .into_iter()
        .enumerate()
        .map(|(id, rank)| {
            let instance = &shapes[rank];
            let rate = rates[rng.next_bounded(3) as usize] * rng.next_range(0.95, 1.05);
            if instance.len() > 1 && rng.next_bool(0.2) {
                let from = 1 + rng.next_bounded(instance.len() as u64 - 1) as usize;
                PlanRequest::replan(id as u64, instance.clone(), rate, from).expect("valid")
            } else {
                PlanRequest::plan(id as u64, instance.clone(), rate).expect("valid")
            }
        })
        .collect()
}

/// Serves the whole stream on a fresh planner, with `sink` attached.
fn serve_stream(
    requests: &[PlanRequest],
    threads: usize,
    sink: &mut dyn TelemetrySink,
) -> (Vec<PlanResponse>, Planner) {
    let mut planner = Planner::new(bucketing()).with_threads(threads);
    let responses = requests
        .chunks(BATCH)
        .flat_map(|chunk| planner.serve_batch_with_sink(chunk, sink))
        .collect();
    (responses, planner)
}

fn job_mix() -> Vec<ChainSpec> {
    let mut rng = Pcg64::seed_from_u64(0xE15);
    (0..JOBS)
        .map(|_| {
            let tasks = 6 + (rng.next_u64() % 5) as usize;
            let works: Vec<f64> = (0..tasks).map(|_| 120.0 + rng.next_f64() * 120.0).collect();
            ChainSpec::new(&works, &vec![12.0; tasks], &vec![18.0; tasks], 20.0, 5.0)
                .expect("valid chain")
        })
        .collect()
}

fn cluster_scenario(threads: usize) -> ClusterScenario {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(MTBF).expect("valid MTBF"));
    ClusterScenario::new(MACHINES, law, 1.0 / MTBF, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 1_500.0, 0.6, 120.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(800.0))
        .expect("valid repair")
        .with_config(
            ClusterConfig::default()
                .with_migration_overhead(90.0)
                .expect("valid overhead")
                .with_replication_checkpoint_factor(1.3)
                .expect("valid factor"),
        )
        .with_trials(TRIALS)
        .with_seed(0x5EED15)
        .with_threads(threads)
}

fn cluster_factory() -> Box<dyn ClusterPolicy> {
    Box::new(BaselinePolicy::ReplicateTopK { k: 1 })
}

/// Long chains (~12,000 tasks each) under a long-MTBF law for the overhead
/// measurement — the paper's production regime (week-long workflows, rare
/// failures), where per-trial engine work dwarfs the per-event sink cost.
fn overhead_job_mix() -> Vec<ChainSpec> {
    let mut rng = Pcg64::seed_from_u64(0x0E15);
    (0..OVERHEAD_JOBS)
        .map(|_| {
            let tasks = 12_000 + (rng.next_u64() % 500) as usize;
            let works: Vec<f64> = (0..tasks).map(|_| 120.0 + rng.next_f64() * 120.0).collect();
            ChainSpec::new(&works, &vec![12.0; tasks], &vec![18.0; tasks], 20.0, 5.0)
                .expect("valid chain")
        })
        .collect()
}

fn overhead_scenario() -> ClusterScenario {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(OVERHEAD_MTBF).expect("valid MTBF"));
    ClusterScenario::new(MACHINES, law, 1.0 / OVERHEAD_MTBF, overhead_job_mix())
        .expect("valid scenario")
        .with_repair(ClusterRepair::Fixed(800.0))
        .expect("valid repair")
        .with_config(
            ClusterConfig::default()
                .with_migration_overhead(90.0)
                .expect("valid overhead")
                .with_replication_checkpoint_factor(1.3)
                .expect("valid factor"),
        )
        .with_seed(0x5EED0E15)
}

/// Best (minimum) of `samples` timing runs of `work`, in seconds per run.
/// The minimum is the standard cost estimator for overhead ratios: scheduler
/// preemption and frequency scaling only ever inflate a sample, so the
/// smallest one is the closest to the code's true cost.
fn min_seconds(samples: usize, runs: usize, mut work: impl FnMut()) -> f64 {
    (0..samples)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..runs {
                work();
            }
            started.elapsed().as_secs_f64() / runs as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    println!(
        "E15 — deterministic telemetry: metrics, tracing, and the two walls\n\
         (service: {SHAPES} shapes / {REQUESTS} requests in batches of {BATCH};\n\
         cluster: {MACHINES} machines, {JOBS} jobs, {TRIALS} trials; all runs\n\
         repeated at 1/2/3/8 worker threads)\n"
    );
    let mut summary = JsonSummary::new("e15_telemetry");
    summary.count("requests", REQUESTS).count("cluster_trials", TRIALS);

    print_header(&[("wall", 44), ("result", 14)]);

    // --- Wall 1a: service batches, instrumented ≡ uninstrumented ---------
    let requests = service_stream();
    let mut plain_planner = Planner::new(bucketing());
    let plain: Vec<PlanResponse> =
        requests.chunks(BATCH).flat_map(|chunk| plain_planner.serve_batch(chunk)).collect();

    let solver_before = solver_stats::snapshot();
    let mut ring = RingBufferSink::new(64);
    let (live, live_planner) = serve_stream(&requests, 1, &mut ring);
    let solver_delta = solver_stats::snapshot().since(&solver_before);
    assert_eq!(live, plain, "a live sink changed the served plans");
    assert!(ring.events().count() > 0, "the live sink saw no service_batch events");
    for threads in [2usize, 3, 8] {
        let (parallel, _) = serve_stream(&requests, threads, &mut NoopSink);
        assert_eq!(parallel, plain, "service stream diverges at {threads} workers");
    }
    println!("{:>44} {:>14}", "service batches traced vs plain, 1/2/3/8", "bit-identical");

    // The serving counters and the solver's work census for the
    // single-threaded live run are pure functions of the stream.
    let service = live_planner.metrics();
    for key in [
        "service_requests_total",
        "service_cache_hits_total",
        "service_cold_solves_total",
        "service_sweep_solves_total",
        "service_suffix_replans_total",
        "service_coalesced_total",
        "service_work_items_total",
        "service_batches_total",
    ] {
        summary.count(key, service.counter(key) as usize);
    }
    let mut solver_metrics = MetricsRegistry::new();
    solver_delta.record_into(&mut solver_metrics);
    for (name, view) in solver_metrics.iter() {
        if let ckpt_telemetry::MetricView::Counter(value) = view {
            summary.count(name, value as usize);
        }
    }

    // Solver counter totals are thread-invariant: the admission dedup hands
    // every worker layout the same work items.
    for threads in [2usize, 3, 8] {
        let before = solver_stats::snapshot();
        let _ = serve_stream(&requests, threads, &mut NoopSink);
        let delta = solver_stats::snapshot().since(&before);
        assert_eq!(delta, solver_delta, "solver counters diverge at {threads} workers");
    }
    println!("{:>44} {:>14}", "solver work census, 1/2/3/8 workers", "identical");

    // --- Wall 1b: cluster Monte-Carlo, instrumented ≡ uninstrumented ------
    let plain_mc =
        run_cluster_monte_carlo(&cluster_scenario(1), cluster_factory).expect("cluster run");
    let mut reference = MetricsRegistry::new();
    let metered_mc =
        run_cluster_monte_carlo_with_metrics(&cluster_scenario(1), cluster_factory, &mut reference)
            .expect("cluster run");
    assert_eq!(metered_mc.samples, plain_mc.samples, "metrics recording perturbed the trials");
    for threads in [2usize, 3, 8] {
        let mut merged = MetricsRegistry::new();
        let outcome = run_cluster_monte_carlo_with_metrics(
            &cluster_scenario(threads),
            cluster_factory,
            &mut merged,
        )
        .expect("cluster run");
        assert_eq!(outcome.samples, plain_mc.samples, "cluster samples diverge at {threads}");
        assert_eq!(merged, reference, "merged metric shards diverge at {threads} workers");
    }
    println!("{:>44} {:>14}", "cluster MC metered vs plain, 1/2/3/8", "bit-identical");

    for key in ["cluster_failures_total", "cluster_migrations_total", "cluster_failovers_total"] {
        summary.count(key, reference.counter(key) as usize);
    }
    let makespans = reference.histogram("cluster_makespan").expect("recorded histogram");
    summary.metric("cluster_makespan_p50", makespans.quantile(0.50).expect("non-empty histogram"));
    summary.metric("cluster_makespan_p99", makespans.quantile(0.99).expect("non-empty histogram"));

    // --- Wall 1c: adaptive-policy Monte-Carlo, counters recording --------
    let spec =
        ChainSpec::new(&[600.0; 16], &[45.0; 16], &[70.0; 16], 30.0, 15.0).expect("valid chain");
    let truth = TruthModel::Exponential { lambda: 6.0 / 40_000.0 };
    let planning_rate = 1.0 / 40_000.0;
    let policy_before = ckpt_adaptive::stats::snapshot();
    let reference_cmp = compare_policies(
        &spec,
        planning_rate,
        &truth,
        &EvaluationConfig { trials: 80, seed: 42, threads: 1 },
    )
    .expect("policy comparison");
    let policy_delta = ckpt_adaptive::stats::snapshot().since(&policy_before);
    for threads in [2usize, 3, 8] {
        let before = ckpt_adaptive::stats::snapshot();
        let cmp = compare_policies(
            &spec,
            planning_rate,
            &truth,
            &EvaluationConfig { trials: 80, seed: 42, threads },
        )
        .expect("policy comparison");
        for (a, b) in reference_cmp.results.iter().zip(&cmp.results) {
            assert_eq!(
                a.mean_makespan.to_bits(),
                b.mean_makespan.to_bits(),
                "policy {} diverges at {threads} threads",
                a.policy
            );
        }
        let delta = ckpt_adaptive::stats::snapshot().since(&before);
        assert_eq!(delta, policy_delta, "re-plan counters diverge at {threads} threads");
    }
    println!("{:>44} {:>14}", "policy MC + replan counters, 1/2/3/8", "bit-identical");
    summary.count(
        "policy_adaptive_resolve_replans_total",
        policy_delta.adaptive_resolve_replans as usize,
    );
    summary
        .count("policy_rate_learning_replans_total", policy_delta.rate_learning_replans as usize);

    // --- Wall 2: trace digest, byte-deterministic -------------------------
    let sc = cluster_scenario(1);
    let mut admission = cluster_factory();
    let jobs = sc.build_jobs(admission.as_mut()).expect("job mix");
    drop(admission);
    let traced_trial = |sink: &mut dyn TelemetrySink| {
        let mut injector = sc.trial_injector(0).expect("trial injector");
        let mut policy = cluster_factory();
        run_cluster_traced(&jobs, MACHINES, &mut injector, policy.as_mut(), sc.config(), sink)
            .expect("traced trial")
    };
    let mut digest_a = DigestSink::new();
    let traced_outcome = traced_trial(&mut digest_a);
    let mut digest_b = DigestSink::new();
    let _ = traced_trial(&mut digest_b);
    assert_eq!(digest_a.hex(), digest_b.hex(), "the sim-time trace digest is not reproducible");
    let mut untraced_injector = sc.trial_injector(0).expect("trial injector");
    let mut untraced_policy = cluster_factory();
    let untraced =
        run_cluster(&jobs, MACHINES, &mut untraced_injector, untraced_policy.as_mut(), sc.config())
            .expect("untraced trial");
    assert_eq!(traced_outcome.makespan, untraced.makespan, "tracing changed the trial");
    println!("{:>44} {:>14}", "sim-time trace digest, two runs", "byte-equal");
    summary.text("sim_trace_digest", &digest_a.hex());
    summary.count("sim_trace_events", digest_a.sim_events() as usize);

    // --- Exposition formats ----------------------------------------------
    let exposition = prometheus_text(&reference);
    let lines = exposition.lines().count();
    assert!(
        exposition.contains("# TYPE cluster_trials_total counter"),
        "missing counter exposition"
    );
    assert!(exposition.contains("cluster_makespan_bucket{le="), "missing histogram exposition");
    println!("{:>44} {:>14}", "prometheus exposition (lines)", lines);
    summary.count("prometheus_lines", lines);

    // --- Overhead: no-op sink ~free, live digest sink ≤ 5% ---------------
    let overhead = measure_overhead();
    println!("{:>44} {:>13.1}%", "no-op sink overhead", 100.0 * (overhead.noop - 1.0));
    println!("{:>44} {:>13.1}%", "live digest-sink overhead", 100.0 * (overhead.live - 1.0));
    summary.metric("timing_noop_overhead_ratio", overhead.noop);
    summary.metric("timing_live_overhead_ratio", overhead.live);

    println!(
        "\nAcceptance (asserted): service batches, cluster Monte-Carlo and the\n\
         adaptive-policy study are bitwise identical instrumented vs\n\
         uninstrumented at 1/2/3/8 threads; shard-merged registries and the\n\
         solver/replan counters are thread-invariant; the sim-time trace digest\n\
         is byte-stable across runs; a live digest sink costs ≤ {:.0}% over the\n\
         untraced engine (release builds).",
        100.0 * (OVERHEAD_CEILING - 1.0),
    );
    summary.emit();
}

struct OverheadRatios {
    noop: f64,
    live: f64,
}

/// Times the cluster engine three ways over the same trial — untraced,
/// no-op sink, live digest sink — and returns the sink/untraced ratios.
///
/// The trial is [`overhead_scenario`]'s (long chains, so engine work
/// dominates). Wall-clock ratios on shared CI hardware are noisy; each
/// variant takes the minimum of [`OVERHEAD_SAMPLES`] interleaved samples of
/// [`OVERHEAD_RUNS`] engine runs, and the ≤ [`OVERHEAD_CEILING`] assertion
/// (release builds only) retries up to [`OVERHEAD_ATTEMPTS`] times before
/// failing, so a single scheduler hiccup cannot fail CI while a real
/// regression still does.
fn measure_overhead() -> OverheadRatios {
    let sc = overhead_scenario();
    let mut admission = cluster_factory();
    let jobs = sc.build_jobs(admission.as_mut()).expect("overhead job mix");
    drop(admission);
    let (sc, jobs) = (&sc, &jobs[..]);
    let mut ratios = OverheadRatios { noop: f64::NAN, live: f64::NAN };
    for attempt in 1..=OVERHEAD_ATTEMPTS {
        let untraced = min_seconds(OVERHEAD_SAMPLES, OVERHEAD_RUNS, || {
            let mut injector = sc.trial_injector(0).expect("trial injector");
            let mut policy = cluster_factory();
            let outcome = run_cluster(jobs, MACHINES, &mut injector, policy.as_mut(), sc.config())
                .expect("untraced trial");
            std::hint::black_box(outcome.makespan);
        });
        let noop = min_seconds(OVERHEAD_SAMPLES, OVERHEAD_RUNS, || {
            let mut injector = sc.trial_injector(0).expect("trial injector");
            let mut policy = cluster_factory();
            let outcome = run_cluster_traced(
                jobs,
                MACHINES,
                &mut injector,
                policy.as_mut(),
                sc.config(),
                &mut NoopSink,
            )
            .expect("no-op traced trial");
            std::hint::black_box(outcome.makespan);
        });
        let live = min_seconds(OVERHEAD_SAMPLES, OVERHEAD_RUNS, || {
            let mut injector = sc.trial_injector(0).expect("trial injector");
            let mut policy = cluster_factory();
            let mut digest = DigestSink::new();
            let outcome = run_cluster_traced(
                jobs,
                MACHINES,
                &mut injector,
                policy.as_mut(),
                sc.config(),
                &mut digest,
            )
            .expect("live traced trial");
            std::hint::black_box((outcome.makespan, digest.digest()));
        });
        ratios = OverheadRatios { noop: noop / untraced, live: live / untraced };
        let within = ratios.noop <= OVERHEAD_CEILING && ratios.live <= OVERHEAD_CEILING;
        if within || cfg!(debug_assertions) {
            return ratios;
        }
        eprintln!(
            "overhead attempt {attempt}/{OVERHEAD_ATTEMPTS}: noop {:.3}, live {:.3} — retrying",
            ratios.noop, ratios.live,
        );
    }
    assert!(
        ratios.noop <= OVERHEAD_CEILING && ratios.live <= OVERHEAD_CEILING,
        "telemetry overhead exceeds {:.0}%: noop ratio {:.3}, live ratio {:.3}",
        100.0 * (OVERHEAD_CEILING - 1.0),
        ratios.noop,
        ratios.live,
    );
    ratios
}

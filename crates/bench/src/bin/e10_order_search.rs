//! Experiment E10 — linearisation search: incremental live-set table builds
//! and order-search quality against the fixed-strategy baseline.
//!
//! Proposition 2 rules out solving the joint order+checkpoint problem
//! exactly, so the practical lever is *searching* the space of topological
//! orders. This experiment measures the two halves of that subsystem:
//!
//! 1. **Table builds** — constructing a §6 live-set cost table
//!    (`dag_schedule::model_cost_table`) with the incremental
//!    `O(n + E)` live-set sweep versus the recomputing reference path
//!    (`model_cost_table_reference`, `O(n·degree)` per position), on wide
//!    fork-join DAGs up to 10⁴ tasks. Acceptance: ≥ 5× at 10⁴ tasks.
//! 2. **Search quality** — `order_search::schedule_dag_search` against
//!    `dag_schedule::schedule_dag_best_of` (same random tries) on chains,
//!    wide fork-joins and layered random DAGs under all three §6 cost
//!    models. The search starts from every best-of order, so it must never
//!    be worse; the table reports how much better it gets.
//!
//! Run with `cargo run --release -p ckpt-bench --bin e10_order_search`
//! (`--json` / `--json=PATH` additionally emits the key metrics).

use std::time::Instant;

use ckpt_bench::{
    print_header, random_chain_instance, random_layered_instance, wide_fork_join_instance,
    JsonSummary,
};
use ckpt_core::cost_model::CheckpointCostModel;
use ckpt_core::order_search::{schedule_dag_search, OrderSearchConfig};
use ckpt_core::{dag_schedule, ProblemInstance};
use ckpt_dag::{linearize, LinearizationStrategy};

fn main() {
    let mut summary = JsonSummary::new("e10_order_search");
    table_build_speedup(&mut summary);
    search_quality(&mut summary);
    summary.emit();
}

/// Part 1: live-set table-build wall clock, incremental sweep vs the
/// recomputing reference, on wide fork-join DAGs (the live set peaks at
/// `branches` tasks — the §6 models' worst case).
fn table_build_speedup(summary: &mut JsonSummary) {
    println!(
        "E10 part 1 — §6 live-set cost-table builds on wide fork-join DAGs\n\
         (live-set-sum model; incremental O(n + E) sweep vs per-position recomputation)\n"
    );
    print_header(&[
        ("tasks", 7),
        ("edges", 7),
        ("incremental", 12),
        ("recomputed", 11),
        ("speedup", 8),
        ("max |Δ|", 9),
    ]);
    for &branches in &[100usize, 1_000, 9_998] {
        let inst = wide_fork_join_instance(7, branches, 100.0, 2_000.0, 80.0, 1e-6);
        let order = linearize::linearize(inst.graph(), LinearizationStrategy::IdOrder);
        let model = CheckpointCostModel::LiveSetSum;

        let t0 = Instant::now();
        let fast = dag_schedule::model_cost_table(&inst, &order, model).expect("valid order");
        let fast_time = t0.elapsed();

        let t1 = Instant::now();
        let reference =
            dag_schedule::model_cost_table_reference(&inst, &order, model).expect("valid order");
        let reference_time = t1.elapsed();

        // Largest relative cost difference across a sample of segments (the
        // two paths may differ by summation order only).
        let n = order.len();
        let mut max_gap = 0.0f64;
        for x in (0..n).step_by((n / 64).max(1)) {
            for j in (x..n).step_by((n / 64).max(1)) {
                let (a, b) = (fast.cost(x, j), reference.cost(x, j));
                max_gap = max_gap.max((a - b).abs() / b.abs().max(1.0));
            }
        }

        let speedup = reference_time.as_secs_f64() / fast_time.as_secs_f64();
        println!(
            "{:>7} {:>7} {:>12} {:>11} {:>7.0}x {:>9.1e}",
            inst.task_count(),
            inst.graph().edge_count(),
            format!("{:.2?}", fast_time),
            format!("{:.2?}", reference_time),
            speedup,
            max_gap,
        );
        summary.metric(format!("table_build_speedup_{}_tasks", inst.task_count()), speedup);
        if branches >= 9_000 {
            assert!(speedup >= 5.0, "acceptance: >= 5x at 10^4 tasks, measured {speedup:.1}x");
        }
    }
    println!("\nAcceptance: >= 5x speedup on the 10^4-task wide DAG (bottom row).\n");
}

/// One search-quality scenario.
struct Scenario {
    name: &'static str,
    instance: ProblemInstance,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "chain-64",
            instance: random_chain_instance(11, 64, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1e-4),
        },
        Scenario {
            name: "fork-join-16",
            instance: wide_fork_join_instance(3, 16, 200.0, 1_500.0, 150.0, 1.0 / 3_000.0),
        },
        Scenario {
            name: "fork-join-48",
            instance: wide_fork_join_instance(4, 48, 100.0, 900.0, 200.0, 1.0 / 5_000.0),
        },
        Scenario {
            name: "layered-5x8",
            instance: random_layered_instance(
                5,
                &[8, 8, 8, 8, 8],
                0.3,
                150.0,
                1_200.0,
                120.0,
                1.0 / 4_000.0,
            ),
        },
        Scenario {
            name: "layered-deep",
            instance: random_layered_instance(
                6,
                &[2, 6, 10, 6, 10, 6, 2],
                0.5,
                100.0,
                800.0,
                180.0,
                1.0 / 2_500.0,
            ),
        },
    ]
}

/// Part 2: expected makespan (under each §6 model) of the best-of baseline
/// vs the order search, plus the search's move statistics.
fn search_quality(summary: &mut JsonSummary) {
    const RESTARTS: u64 = 8;
    let config = OrderSearchConfig { restarts: RESTARTS, steps: 1_024, ..Default::default() };
    println!(
        "E10 part 2 — order search vs best-of-{} fixed linearisations\n\
         ({} proposals per start, adjacent swaps + window rotations, threads=auto)\n",
        4 + RESTARTS,
        config.steps,
    );
    print_header(&[
        ("scenario", 13),
        ("model", 14),
        ("best-of", 12),
        ("search", 12),
        ("gain", 7),
        ("acc/prop", 10),
        ("ok", 3),
    ]);
    for scenario in scenarios() {
        for model in [
            CheckpointCostModel::PerLastTask,
            CheckpointCostModel::LiveSetSum,
            CheckpointCostModel::LiveSetMax,
        ] {
            let baseline = dag_schedule::schedule_dag_best_of(&scenario.instance, model, RESTARTS)
                .expect("valid instance");
            let found =
                schedule_dag_search(&scenario.instance, model, &config).expect("valid instance");
            let base = baseline.expected_makespan_under_model;
            let value = found.expected_makespan_under_model();
            let never_worse = value <= base;
            assert!(never_worse, "{}/{model}: search {value} worse than best-of {base}", {
                scenario.name
            });
            summary.metric(
                format!("gain_pct_{}_{model}", scenario.name.replace('-', "_")),
                100.0 * (base - value) / base,
            );
            println!(
                "{:>13} {:>14} {:>12.5e} {:>12.5e} {:>6.2}% {:>10} {:>3}",
                scenario.name,
                model.to_string(),
                base,
                value,
                100.0 * (base - value) / base,
                format!("{}/{}", found.accepted_moves, found.proposed_moves),
                if never_worse { "yes" } else { "NO" },
            );
        }
    }
    println!(
        "\nExpected shape: 'search' <= 'best-of' everywhere ('ok' column all yes — \
         asserted); chains cannot improve (unique order, 0 proposals); the \
         heterogeneous wide/layered scenarios improve by a few percent, most \
         under the live-set models where the order shapes the cost vectors.\n"
    );
}

//! Experiment E12 — online DAG policies: re-linearise the remaining graph
//! after failures, vs re-placing checkpoints on a frozen order.
//!
//! E11 showed that observing failures and re-solving checkpoint *placement*
//! recovers most of a misspecified plan's regret — on chains, where the
//! execution order is fixed. On DAGs the stale plan is wrong twice: the
//! placement *and* the linearisation were optimised for the wrong failure
//! rate. This experiment runs a heterogeneous layered DAG, planned at a
//! fixed rate by the offline order search, under increasingly misspecified
//! truths, with four policies:
//!
//! * `clairvoyant` — the offline `schedule_dag_search` plan at the truth's
//!   effective rate, replayed statically (the regret reference);
//! * `dag-static` — the offline plan at the (mis)planning rate;
//! * `dag-adaptive-resolve` — Gamma-posterior rate + suffix placement
//!   re-solve after every failure, order frozen;
//! * `dag-relinearise` — the same, plus a bounded-budget order-search
//!   restart on the remaining graph (`suffix_subgraph`), seeded with the
//!   incumbent suffix so the chosen order is never a planned-value
//!   regression.
//!
//! All policies of one scenario share per-trial failure streams (paired
//! comparison), and every number is bit-identical at any thread count
//! (asserted below, along with the headline acceptance claims).
//!
//! Run with `cargo run --release -p ckpt-bench --bin e12_dag_adaptive`
//! (`--json` / `--json=PATH` additionally emits the key metrics).

use ckpt_adaptive::{
    compare_dag_policies, AdaptiveError, DagPolicyComparison, DagSpec, EvaluationConfig, TruthModel,
};
use ckpt_bench::{print_header, random_layered_instance, JsonSummary};
use ckpt_core::cost_model::CheckpointCostModel;
use ckpt_core::order_search::OrderSearchConfig;

/// The planning rate every policy (except the clairvoyant) plans with.
const PLANNING_RATE: f64 = 1.0 / 40_000.0;
/// Monte-Carlo trials per policy and scenario.
const TRIALS: usize = 1_500;

/// The workload: a 5-level layered random DAG (18 tasks, heterogeneous
/// weights and strongly heterogeneous checkpoint/recovery costs — the
/// regime where the *order* of the remaining tasks matters, because cheap
/// checkpoints want to sit at segment boundaries).
fn spec() -> DagSpec {
    let instance = random_layered_instance(
        0xE12,
        &[3, 4, 4, 4, 3],
        0.45,
        200.0,
        1_400.0,
        220.0,
        PLANNING_RATE,
    );
    DagSpec::new(instance, CheckpointCostModel::PerLastTask).expect("valid instance")
}

/// The offline planner budget (shared by the plans and the clairvoyant).
fn search() -> OrderSearchConfig {
    OrderSearchConfig { restarts: 6, steps: 512, threads: 1, ..Default::default() }
}

struct Scenario {
    name: &'static str,
    /// Key prefix in the JSON summary.
    key: &'static str,
    truth: TruthModel,
    /// Whether the truth's rate is ≥ 4× the planning rate (the acceptance
    /// rows).
    misspecified: bool,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "true = plan",
            key: "true_rate",
            truth: TruthModel::Exponential { lambda: PLANNING_RATE },
            misspecified: false,
        },
        Scenario {
            name: "4x rate",
            key: "rate_4x",
            truth: TruthModel::Exponential { lambda: 4.0 * PLANNING_RATE },
            misspecified: true,
        },
        Scenario {
            name: "10x rate",
            key: "rate_10x",
            truth: TruthModel::Exponential { lambda: 10.0 * PLANNING_RATE },
            misspecified: true,
        },
        Scenario {
            name: "weibull 8x",
            key: "weibull_8x",
            truth: TruthModel::WeibullPlatform {
                processors: 8,
                shape: 0.7,
                platform_mtbf: 5_000.0,
            },
            misspecified: true,
        },
    ]
}

fn main() {
    let stats_start = ckpt_adaptive::stats::snapshot();
    let spec = spec();
    let config = EvaluationConfig { trials: TRIALS, seed: 0x5EED12, threads: 0 };
    let search = search();
    println!(
        "E12 — online DAG policies: re-linearising the remaining graph vs a frozen order\n\
         (layered DAG, {} tasks / {} edges, ~{:.0} s work, planned at λ = {PLANNING_RATE:.2e};\n\
         {TRIALS} paired trials per policy; regret vs the clairvoyant offline search at the\n\
         true rate)\n",
        spec.len(),
        spec.instance().graph().edge_count(),
        spec.total_work(),
    );
    print_header(&[
        ("scenario", 12),
        ("policy", 20),
        ("mean makespan", 14),
        ("regret", 10),
        ("regret%", 8),
        ("ckpts", 6),
        ("reord", 6),
        ("fails", 6),
    ]);

    let mut summary = JsonSummary::new("e12_dag_adaptive");
    summary
        .metric("planning_rate", PLANNING_RATE)
        .count("trials", TRIALS)
        .count("tasks", spec.len());

    let mut horizon_rejected = false;
    for scenario in scenarios() {
        // Same harness-robustness surface as e11: a trace scenario rejected
        // by the 64x horizon guard reports its exceeded-trial count in the
        // JSON summary (and exits non-zero after emitting) instead of dying
        // with nothing machine-readable.
        let cmp =
            match compare_dag_policies(&spec, PLANNING_RATE, &scenario.truth, &config, &search) {
                Ok(cmp) => cmp,
                Err(AdaptiveError::TraceHorizonExceeded { horizon, makespan, trials }) => {
                    eprintln!(
                        "{:>12}: {trials} trial(s) outran the trace horizon \
                     ({horizon:.0} s, worst makespan {makespan:.0} s) — rejected",
                        scenario.name
                    );
                    summary.count(format!("{}_horizon_exceeded_trials", scenario.key), trials);
                    horizon_rejected = true;
                    continue;
                }
                Err(e) => panic!("scenario {}: {e}", scenario.name),
            };
        for row in &cmp.results {
            println!(
                "{:>12} {:>20} {:>14.1} {:>10.1} {:>7.2}% {:>6.2} {:>6.2} {:>6.2}",
                scenario.name,
                row.policy,
                row.mean_makespan,
                row.regret,
                100.0 * row.regret / cmp.clairvoyant_makespan,
                row.mean_checkpoints,
                row.mean_reorders,
                row.mean_failures,
            );
            summary.metric(
                format!("{}_{}_makespan", scenario.key, row.policy.replace('-', "_")),
                row.mean_makespan,
            );
        }
        summary.metric(
            format!("{}_relinearise_reorders", scenario.key),
            cmp.row("dag-relinearise").mean_reorders,
        );
        summary.count(format!("{}_horizon_exceeded_trials", scenario.key), 0);
        println!();
        assert_claims(&scenario, &cmp);
    }

    determinism_check(&spec, &config, &search);
    println!(
        "Acceptance (asserted): under every truth with rate >= 4x the planning rate,\n\
         dag-relinearise achieves strictly lower mean makespan than dag-static and is\n\
         no worse than dag-adaptive-resolve (re-ordering the remaining graph only adds\n\
         options); at the true rate dag-relinearise stays within 1% of the clairvoyant;\n\
         and every comparison is bit-identical at 1/2/3/8 worker threads."
    );
    // The process-wide policy counters, as a delta over the whole experiment:
    // both golden-test invocations execute identical work, so the delta is
    // deterministic even though the underlying atomics are cumulative.
    let replans = ckpt_adaptive::stats::snapshot().since(&stats_start);
    summary.count("policy_dag_relinearisations_total", replans.dag_relinearisations as usize);
    summary.emit();
    if horizon_rejected {
        std::process::exit(2);
    }
}

/// The headline claims, asserted per scenario.
fn assert_claims(scenario: &Scenario, cmp: &DagPolicyComparison) {
    let stale = cmp.row("dag-static").mean_makespan;
    let resolve = cmp.row("dag-adaptive-resolve").mean_makespan;
    let relinearise = cmp.row("dag-relinearise").mean_makespan;
    if scenario.misspecified {
        assert!(
            relinearise < stale,
            "{}: dag-relinearise {relinearise} must beat dag-static {stale}",
            scenario.name
        );
        assert!(
            relinearise <= resolve,
            "{}: dag-relinearise {relinearise} must be no worse than dag-adaptive-resolve \
             {resolve}",
            scenario.name
        );
    } else {
        // Truth == plan: the static plan IS the clairvoyant plan, and the
        // re-planning policies' posteriors hover at the planning rate.
        assert_eq!(cmp.row("dag-static").regret, 0.0, "static == clairvoyant at the true rate");
        let gap = (relinearise - cmp.clairvoyant_makespan).abs() / cmp.clairvoyant_makespan;
        assert!(gap < 0.01, "{}: dag-relinearise off the optimum by {gap}", scenario.name);
    }
}

/// Re-runs one misspecified scenario at several worker counts and demands
/// byte-identical results.
fn determinism_check(spec: &DagSpec, config: &EvaluationConfig, search: &OrderSearchConfig) {
    let truth = TruthModel::Exponential { lambda: 10.0 * PLANNING_RATE };
    let single = compare_dag_policies(
        spec,
        PLANNING_RATE,
        &truth,
        &EvaluationConfig { threads: 1, ..*config },
        search,
    )
    .expect("valid scenario");
    for threads in [2usize, 3, 8] {
        let multi = compare_dag_policies(
            spec,
            PLANNING_RATE,
            &truth,
            &EvaluationConfig { threads, ..*config },
            search,
        )
        .expect("valid scenario");
        assert_eq!(single, multi, "DAG policy comparison differs at {threads} threads");
    }
    println!("Determinism: 10x scenario re-run at 1/2/3/8 threads — bit-identical.\n");
}

//! E14 — planner-as-a-service throughput: sustained plans/sec and tail
//! latency of `ckpt-service` under a Zipf fleet workload, with the
//! bitwise-correctness and determinism walls asserted inline.
//!
//! The scenario: a fleet of workflows drawn from `SHAPES` chain templates
//! (Zipf-popular — a few hot shapes take most of the traffic) sends
//! `REQUESTS` plan requests at telemetry-jittered failure rates, ~20% of
//! them mid-run re-plans. The planner quantises rates onto a 13-point log
//! grid, so the hot set concentrates on a few dozen cache buckets.
//!
//! Asserted acceptance criteria:
//!
//! * every served plan (full and re-plan) is **bitwise identical** to a
//!   cold one-shot solve at its effective rate;
//! * the whole stream is bit-identical at 1/2/3/8 worker threads;
//! * cache-hit throughput on the hot set is ≥ 10× cold-solve throughput;
//! * at n = 4096, suffix re-plans are ≥ 50× faster than full solves.
//!
//! Wall-clock numbers (plans/sec, p50/p99 latency, the speedup ratios) are
//! reported under `timing_`-prefixed JSON keys, which the golden-snapshot
//! suite excludes from its byte comparison (`--json` / `--json=PATH`).

use std::time::Instant;

use ckpt_bench::{print_header, testgen, JsonSummary};
use ckpt_core::chain_dp::{optimal_chain_schedule, ResumableDp};
use ckpt_core::evaluate::segment_cost_table;
use ckpt_dag::properties;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_service::{PlanInstance, PlanRequest, PlanResponse, Planner, RateBucketing};
use ckpt_telemetry::{HistogramSpec, LogHistogram};

const SEED: u64 = 14;
const SHAPES: usize = 48;
const HOT_SHAPES: usize = 4;
const REQUESTS: usize = 4_000;
const ZIPF_EXPONENT: f64 = 1.1;
const BATCH: usize = 256;
const REPLAN_FRACTION: f64 = 0.2;
/// The big-chain phase: re-plan the last `REPLAN_TAIL` of `BIG_N` tasks.
const BIG_N: usize = 4_096;
const REPLAN_TAIL: usize = 64;
const BIG_LAMBDA: f64 = 1e-6;

/// One workload shape, reconstructible at any rate for cold references.
#[derive(Clone, Copy)]
struct Shape {
    seed: u64,
    n: usize,
}

impl Shape {
    fn generate(rank: usize) -> Shape {
        // Hot shapes are mid-sized (the fleet's standard pipelines); the
        // tail varies from tiny to large.
        let n = if rank < HOT_SHAPES { 192 + 32 * rank } else { 24 + (rank * 13) % 240 };
        Shape { seed: SEED ^ ((rank as u64) << 20), n }
    }

    fn at(self, lambda: f64) -> ckpt_core::ProblemInstance {
        testgen::heterogeneous_chain_instance(self.seed, self.n, lambda)
    }

    fn instance(self) -> PlanInstance {
        PlanInstance::from_chain_instance(&self.at(1e-4)).expect("chain instance")
    }
}

fn bucketing() -> RateBucketing {
    RateBucketing::log_grid(1e-6, 1e-3, 13).expect("valid grid")
}

/// The Zipf fleet stream: per request a shape rank, a jittered rate and a
/// ~20% chance of being a mid-run re-plan.
fn build_stream(shapes: &[(Shape, PlanInstance)]) -> Vec<(PlanRequest, Shape)> {
    let ranks = testgen::zipf_ranks(SEED, shapes.len(), ZIPF_EXPONENT, REQUESTS);
    let mut rng = Pcg64::seed_from_u64(SEED ^ 0xE14);
    let telemetry = [3e-5, 1e-4, 3e-4];
    ranks
        .into_iter()
        .enumerate()
        .map(|(id, rank)| {
            let (shape, instance) = &shapes[rank];
            let rate = telemetry[rng.next_bounded(3) as usize] * rng.next_range(0.95, 1.05);
            let request = if shape.n > 1 && rng.next_bool(REPLAN_FRACTION) {
                let from = 1 + rng.next_bounded(shape.n as u64 - 1) as usize;
                PlanRequest::replan(id as u64, instance.clone(), rate, from).expect("valid")
            } else {
                PlanRequest::plan(id as u64, instance.clone(), rate).expect("valid")
            };
            (request, *shape)
        })
        .collect()
}

fn serve_stream(stream: &[(PlanRequest, Shape)], threads: usize) -> Vec<PlanResponse> {
    let mut planner = Planner::new(bucketing()).with_threads(threads);
    let requests: Vec<PlanRequest> = stream.iter().map(|(r, _)| r.clone()).collect();
    requests.chunks(BATCH).flat_map(|chunk| planner.serve_batch(chunk)).collect()
}

/// Bitwise wall: the response must equal a cold one-shot solve of the same
/// chain at the response's effective rate (full solve, or a fresh
/// full-order table + fresh suffix solve for re-plans).
fn assert_matches_cold(response: &PlanResponse, shape: Shape) {
    let lambda = response.effective_lambda;
    let (value, positions) = if response.resume_from == 0 {
        let solution = optimal_chain_schedule(&shape.at(lambda)).expect("chain");
        (solution.expected_makespan, solution.checkpoint_positions)
    } else {
        let instance = shape.at(lambda);
        let order = properties::as_chain(instance.graph()).expect("chain graph");
        let table = segment_cost_table(&instance, &order).expect("valid");
        let mut dp = ResumableDp::new();
        let value = dp.solve_suffix(&table, response.resume_from);
        (value, dp.suffix_positions(response.resume_from))
    };
    assert_eq!(
        *response.checkpoint_positions, positions,
        "request {}: served positions diverge from the cold solve",
        response.id
    );
    assert_eq!(
        response.expected_makespan.to_bits(),
        value.to_bits(),
        "request {}: served value diverges from the cold solve",
        response.id
    );
}

fn main() {
    println!(
        "E14 — planner-as-a-service throughput\n\
         ({SHAPES} workflow shapes, Zipf(s={ZIPF_EXPONENT}) popularity, {REQUESTS} requests in \
         batches of {BATCH},\n ~{:.0}% re-plans, 13-bucket log rate grid over [1e-6, 1e-3])\n",
        100.0 * REPLAN_FRACTION,
    );

    let mut summary = JsonSummary::new("e14_service");
    summary
        .count("shapes", SHAPES)
        .count("hot_shapes", HOT_SHAPES)
        .count("requests", REQUESTS)
        .count("batch", BATCH);

    let shapes: Vec<(Shape, PlanInstance)> = (0..SHAPES)
        .map(|rank| {
            let shape = Shape::generate(rank);
            (shape, shape.instance())
        })
        .collect();
    let stream = build_stream(&shapes);

    // --- Sustained throughput over the fleet stream -----------------------
    let mut planner = Planner::new(bucketing());
    let requests: Vec<PlanRequest> = stream.iter().map(|(r, _)| r.clone()).collect();
    let started = Instant::now();
    let responses: Vec<PlanResponse> =
        requests.chunks(BATCH).flat_map(|chunk| planner.serve_batch(chunk)).collect();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = planner.stats();
    let plans_per_sec = REQUESTS as f64 / elapsed;

    print_header(&[("metric", 28), ("value", 14)]);
    println!("{:>28} {:>14.0}", "sustained plans/sec", plans_per_sec);
    println!(
        "{:>28} {:>13.1}%",
        "cache hit rate",
        100.0 * stats.cache_hits as f64 / stats.requests as f64
    );
    summary
        .count("cache_hits", stats.cache_hits as usize)
        .count("cold_solves", stats.cold_solves as usize)
        .count("sweep_solves", stats.sweep_solves as usize)
        .count("suffix_replans", stats.suffix_replans as usize)
        .count("cached_orders", planner.cached_orders())
        .count("cached_plans", planner.cached_plans())
        .metric("timing_plans_per_sec", plans_per_sec);

    // The deterministic payload digest: total expected makespan served, in
    // request order (byte-compared by the golden-snapshot suite).
    let total_makespan: f64 = responses.iter().map(|r| r.expected_makespan).sum();
    let checkpoints_served: usize = responses.iter().map(|r| r.checkpoint_positions.len()).sum();
    summary.metric("total_expected_makespan", total_makespan);
    summary.count("checkpoints_served", checkpoints_served);

    // --- Bitwise wall: every response equals a cold one-shot solve -------
    for (response, (_, shape)) in responses.iter().zip(&stream) {
        assert_matches_cold(response, *shape);
    }
    println!("{:>28} {:>14}", "bitwise vs cold solves", "ok");

    // --- Determinism wall: 1/2/3/8 workers, bit-identical ----------------
    let serial = serve_stream(&stream, 1);
    for threads in [2usize, 3, 8] {
        let parallel = serve_stream(&stream, threads);
        assert_eq!(parallel, serial, "stream diverges at {threads} workers");
    }
    assert_eq!(responses, serial, "all-core run diverges from the serial run");
    println!("{:>28} {:>14}", "bit-identical 1/2/3/8", "ok");

    // --- Per-request latency distribution (batch size 1, warm cache) -----
    let mut latency_planner = Planner::new(bucketing());
    let mut latency = LogHistogram::new(HistogramSpec::default());
    for request in &requests {
        let t = Instant::now();
        let _ = latency_planner.serve_batch(std::slice::from_ref(request));
        latency.record(t.elapsed().as_secs_f64() * 1e6);
    }
    // The quantile API returns `None` only on an empty histogram; REQUESTS
    // samples were just recorded, so a missing quantile is a real bug.
    let p50 = latency.quantile(0.50).expect("non-empty latency histogram");
    let p99 = latency.quantile(0.99).expect("non-empty latency histogram");
    println!("{:>28} {:>11.1} µs", "p50 latency", p50);
    println!("{:>28} {:>11.1} µs", "p99 latency", p99);
    summary.metric("timing_p50_latency_us", p50).metric("timing_p99_latency_us", p99);

    // --- Hot-set cache hits vs cold solves (≥ 10×) -----------------------
    let hot_requests: Vec<PlanRequest> = requests
        .iter()
        .zip(&stream)
        .filter(|(request, (_, shape))| {
            request.resume_from() == 0
                && shapes[..HOT_SHAPES].iter().any(|(hot, _)| hot.seed == shape.seed)
        })
        .map(|(request, _)| request.clone())
        .take(2_000)
        .collect();
    let mut hot_planner = Planner::new(bucketing());
    let _ = hot_planner.serve_batch(&hot_requests); // warm every bucket
    let hits_before = hot_planner.stats().cache_hits;
    let t = Instant::now();
    let _ = hot_planner.serve_batch(&hot_requests);
    let hit_time = t.elapsed().as_secs_f64();
    assert_eq!(
        hot_planner.stats().cache_hits - hits_before,
        hot_requests.len() as u64,
        "warm hot-set pass must be all cache hits"
    );
    let hit_rate = hot_requests.len() as f64 / hit_time;

    // Cold baseline: the same distinct (shape, bucket) plans on a fresh
    // planner, one batch of all-misses.
    let quantiser = bucketing();
    let mut seen = std::collections::HashSet::new();
    let distinct: Vec<PlanRequest> = hot_requests
        .iter()
        .filter(|request| {
            let (bucket, _) = quantiser.bucket(request.lambda());
            seen.insert((request.instance().fingerprint(), bucket))
        })
        .cloned()
        .collect();
    let mut cold_planner = Planner::new(bucketing()).with_threads(1);
    let t = Instant::now();
    let _ = cold_planner.serve_batch(&distinct);
    let cold_time = t.elapsed().as_secs_f64();
    let cold_rate = distinct.len() as f64 / cold_time;
    let hit_speedup = hit_rate / cold_rate;
    println!(
        "{:>28} {:>13.0}× ({} hits at {:.2e}/s vs {} cold at {:.2e}/s)",
        "hot-set hit speedup",
        hit_speedup,
        hot_requests.len(),
        hit_rate,
        distinct.len(),
        cold_rate,
    );
    assert!(
        hit_speedup >= 10.0,
        "cache-hit throughput must be >= 10x cold solves, got {hit_speedup:.1}x"
    );
    summary
        .count("hot_requests", hot_requests.len())
        .count("hot_distinct_plans", distinct.len())
        .metric("timing_hit_per_sec", hit_rate)
        .metric("timing_cold_per_sec", cold_rate)
        .metric("timing_hit_speedup", hit_speedup);

    // --- Suffix re-plans vs full solves at n = 4096 (≥ 50×) --------------
    let big = Shape { seed: SEED ^ 0xB16, n: BIG_N };
    let big_instance = big.instance();
    let mut big_planner = Planner::new(RateBucketing::Exact).with_threads(1);
    // Warm the order's sweep and the λ bucket's table.
    let warm = big_planner
        .serve_batch(&[PlanRequest::plan(0, big_instance.clone(), BIG_LAMBDA).expect("valid")]);
    assert_matches_cold(&warm[0], big);

    // Full solves at fresh rates: each stamps a table and runs the full DP.
    let full_rates = 8;
    let full_requests: Vec<PlanRequest> = (0..full_rates)
        .map(|k| {
            let rate = BIG_LAMBDA * (1.0 + (k as f64 + 1.0) * 1e-3);
            PlanRequest::plan(100 + k as u64, big_instance.clone(), rate).expect("valid")
        })
        .collect();
    let t = Instant::now();
    let full_responses = big_planner.serve_batch(&full_requests);
    let full_time = t.elapsed().as_secs_f64() / full_rates as f64;

    // Re-plans of the last REPLAN_TAIL positions at the warm rate: cached
    // table, suffix DP only. Served one per batch — re-plans are computed
    // fresh every time, so each batch re-runs the suffix DP.
    let replans = 64;
    let from = BIG_N - REPLAN_TAIL;
    let replan_request =
        PlanRequest::replan(200, big_instance.clone(), BIG_LAMBDA, from).expect("valid");
    let t = Instant::now();
    let mut last = None;
    for _ in 0..replans {
        last = Some(big_planner.serve_batch(std::slice::from_ref(&replan_request)).remove(0));
    }
    let replan_time = t.elapsed().as_secs_f64() / replans as f64;
    let replan = last.expect("at least one re-plan");
    assert_matches_cold(&replan, big);
    assert_matches_cold(&full_responses[0], big);
    let replan_speedup = full_time / replan_time;
    println!(
        "{:>28} {:>13.0}× (full {:.2} ms vs re-plan {:.1} µs, n = {BIG_N}, tail {REPLAN_TAIL})",
        "suffix re-plan speedup",
        replan_speedup,
        full_time * 1e3,
        replan_time * 1e6,
    );
    assert!(
        replan_speedup >= 50.0,
        "suffix re-plans must be >= 50x faster than full solves at n = {BIG_N}, \
         got {replan_speedup:.1}x"
    );
    summary
        .count("big_n", BIG_N)
        .count("replan_tail", REPLAN_TAIL)
        .metric("timing_full_solve_ms", full_time * 1e3)
        .metric("timing_replan_us", replan_time * 1e6)
        .metric("timing_replan_speedup", replan_speedup);

    println!(
        "\nAcceptance (asserted): every served plan and re-plan is bitwise equal\n\
         to a cold one-shot solve at its effective rate; the stream is\n\
         bit-identical at 1/2/3/8 worker threads; hot-set cache hits sustain\n\
         >= 10x the cold-solve rate; and n = {BIG_N} suffix re-plans run >= 50x\n\
         faster than full solves."
    );
    summary.emit();
}

//! Seeded test-instance generators shared by the experiment binaries, the
//! Criterion benches and every test suite of the workspace.
//!
//! Before this module existed, three near-identical copies of the
//! random-chain / random-DAG generators lived in `ckpt-bench`'s crate root,
//! `tests/chain_dp_optimality.rs` and `ckpt-core`'s cost-model property
//! tests. They are deduplicated here **preserving each generator's exact
//! RNG consumption pattern**, so the same seeds produce bit-identical
//! instances as before the migration — asserted by the `legacy_migration`
//! tests below, which inline the original generator code and compare.
//!
//! Shapes provided: uniform random chains ([`random_chain_instance`]),
//! heterogeneous chains ([`heterogeneous_chain_instance`]), independent
//! task sets ([`random_independent_instance`]), wide fork-joins
//! ([`wide_fork_join_instance`]) and layered random DAGs
//! ([`random_layered_instance`], plus the random-structure
//! [`random_layered_proptest_case`] used by property tests).

use ckpt_core::{ProblemInstance, ProblemInstanceBuilder};
use ckpt_dag::{generators, linearize, LinearizationStrategy, TaskId};
use ckpt_failure::{Pcg64, RandomSource};

/// A deterministic random chain instance used across experiments:
/// `n` tasks with weights in `[min_w, max_w]`, uniform checkpoint/recovery
/// costs and the given platform rate.
#[allow(clippy::too_many_arguments)] // flat experiment-config signature
pub fn random_chain_instance(
    seed: u64,
    n: usize,
    min_w: f64,
    max_w: f64,
    checkpoint: f64,
    recovery: f64,
    downtime: f64,
    lambda: f64,
) -> ProblemInstance {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| rng.next_range(min_w, max_w)).collect();
    let graph = generators::chain(&weights).expect("n >= 1");
    let mut builder: ProblemInstanceBuilder = ProblemInstance::builder(graph);
    builder
        .uniform_checkpoint_cost(checkpoint)
        .uniform_recovery_cost(recovery)
        .downtime(downtime)
        .platform_lambda(lambda);
    builder.build().expect("valid parameters")
}

/// A deterministic **heterogeneous** random chain: weights in
/// `[100, 4000]`, checkpoint costs in `[10, 300]`, recovery costs in
/// `[10, 600]`, downtime 30, initial recovery 20 — the integration-test
/// workhorse (formerly a private copy in `tests/chain_dp_optimality.rs`;
/// same seeds ⇒ same instances).
pub fn heterogeneous_chain_instance(seed: u64, n: usize, lambda: f64) -> ProblemInstance {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| 100.0 + rng.next_f64() * 3_900.0).collect();
    let checkpoints: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 290.0).collect();
    let recoveries: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 590.0).collect();
    let graph = generators::chain(&weights).expect("n >= 1");
    ProblemInstance::builder(graph)
        .checkpoint_costs(checkpoints)
        .recovery_costs(recoveries)
        .downtime(30.0)
        .initial_recovery(20.0)
        .platform_lambda(lambda)
        .build()
        .expect("valid parameters")
}

/// A deterministic random independent-task instance.
pub fn random_independent_instance(
    seed: u64,
    n: usize,
    min_w: f64,
    max_w: f64,
    checkpoint: f64,
    lambda: f64,
) -> ProblemInstance {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| rng.next_range(min_w, max_w)).collect();
    let graph = generators::independent(&weights).expect("n >= 1");
    let mut builder = ProblemInstance::builder(graph);
    builder
        .uniform_checkpoint_cost(checkpoint)
        .uniform_recovery_cost(checkpoint)
        .platform_lambda(lambda);
    builder.build().expect("valid parameters")
}

/// A deterministic wide fork-join instance: one fork task, `branches`
/// parallel branch tasks with weights in `[min_w, max_w]`, one join task —
/// the live set grows to `branches` tasks mid-execution, the worst case for
/// the §6 live-set cost models.
pub fn wide_fork_join_instance(
    seed: u64,
    branches: usize,
    min_w: f64,
    max_w: f64,
    max_cost: f64,
    lambda: f64,
) -> ProblemInstance {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..branches).map(|_| rng.next_range(min_w, max_w)).collect();
    let graph = generators::fork_join(branches, &weights, min_w, min_w).expect("branches >= 1");
    let n = graph.task_count();
    let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * max_cost).collect();
    let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * max_cost).collect();
    let mut builder = ProblemInstance::builder(graph);
    builder.checkpoint_costs(ckpt).recovery_costs(rec).platform_lambda(lambda);
    builder.build().expect("valid parameters")
}

/// A deterministic layered random DAG instance: `layers[k]` tasks per
/// precedence level, each task wired to the previous level with probability
/// `edge_prob`, weights in `[min_w, max_w]`, heterogeneous checkpoint and
/// recovery costs in `[0, max_cost]`.
#[allow(clippy::too_many_arguments)] // flat experiment-config signature
pub fn random_layered_instance(
    seed: u64,
    layers: &[usize],
    edge_prob: f64,
    min_w: f64,
    max_w: f64,
    max_cost: f64,
    lambda: f64,
) -> ProblemInstance {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut weight_rng = rng.derive(1);
    let mut coin_rng = rng.derive(2);
    let graph = generators::layered_random(
        layers,
        move |_, _| weight_rng.next_range(min_w, max_w),
        edge_prob,
        move || coin_rng.next_f64(),
    )
    .expect("non-empty layers");
    let n = graph.task_count();
    let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * max_cost).collect();
    let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * max_cost).collect();
    let mut builder = ProblemInstance::builder(graph);
    builder.checkpoint_costs(ckpt).recovery_costs(rec).platform_lambda(lambda);
    builder.build().expect("valid parameters")
}

/// A layered random DAG instance with a pseudo-random **layer structure**
/// (2–5 levels of 1–5 tasks, random edge density) and heterogeneous costs,
/// plus a seeded random topological order of it — the property-test case of
/// `ckpt-core`'s cost-model sweep (formerly a private copy there; same
/// seeds ⇒ same cases).
pub fn random_layered_proptest_case(seed: u64) -> (ProblemInstance, Vec<TaskId>) {
    let mut rng = Pcg64::seed_from_u64(seed);
    let layer_count = 2 + (rng.next_u64() % 4) as usize;
    let layers: Vec<usize> = (0..layer_count).map(|_| 1 + (rng.next_u64() % 5) as usize).collect();
    let edge_prob = 0.2 + rng.next_f64() * 0.6;
    let mut coin_rng = rng.derive(1);
    let graph = generators::layered_random(
        &layers,
        |_, _| 10.0 + 90.0 * ((seed % 7) as f64 + 1.0),
        edge_prob,
        move || coin_rng.next_f64(),
    )
    .expect("non-empty layers");
    let n = graph.task_count();
    let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
    let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
    let order = linearize::linearize(&graph, LinearizationStrategy::Random(seed ^ 0xA5));
    let instance = ProblemInstance::builder(graph)
        .checkpoint_costs(ckpt)
        .recovery_costs(rec)
        .platform_lambda(1e-4)
        .build()
        .expect("valid parameters");
    (instance, order)
}

/// `count` Zipf-distributed ranks over `0..items`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^exponent` (inverse-CDF on the
/// precomputed normalised weights). The fleet-workload generator of the
/// serving-tier experiments: a handful of hot workflow shapes take most of
/// the request traffic, a long tail takes the rest. Deterministic per seed.
///
/// # Panics
///
/// Panics if `items` is zero or `exponent` is not finite.
pub fn zipf_ranks(seed: u64, items: usize, exponent: f64, count: usize) -> Vec<usize> {
    assert!(items > 0, "need at least one rank");
    assert!(exponent.is_finite(), "exponent must be finite");
    let mut cdf = Vec::with_capacity(items);
    let mut total = 0.0;
    for k in 0..items {
        total += 1.0 / ((k + 1) as f64).powf(exponent);
        cdf.push(total);
    }
    let mut rng = Pcg64::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let u = rng.next_f64() * total;
            cdf.partition_point(|&c| c <= u).min(items - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::properties;

    #[test]
    fn random_chain_instance_is_deterministic_and_chain_shaped() {
        let a = random_chain_instance(1, 10, 100.0, 200.0, 30.0, 30.0, 0.0, 1e-4);
        let b = random_chain_instance(1, 10, 100.0, 200.0, 30.0, 30.0, 0.0, 1e-4);
        assert_eq!(a, b);
        assert!(properties::is_chain(a.graph()));
        assert_eq!(a.task_count(), 10);
    }

    #[test]
    fn zipf_ranks_are_deterministic_skewed_and_in_range() {
        let ranks = zipf_ranks(14, 32, 1.1, 4_000);
        assert_eq!(ranks, zipf_ranks(14, 32, 1.1, 4_000));
        assert!(ranks.iter().all(|&r| r < 32));
        // Zipf skew: rank 0 alone beats the whole tail's least-popular half.
        let rank0 = ranks.iter().filter(|&&r| r == 0).count();
        let tail_half = ranks.iter().filter(|&&r| r >= 16).count();
        assert!(rank0 > tail_half, "rank0 {rank0} vs tail {tail_half}");
        // Degenerate single-item case always returns rank 0.
        assert!(zipf_ranks(7, 1, 1.5, 100).iter().all(|&r| r == 0));
    }

    #[test]
    fn random_independent_instance_has_no_edges() {
        let inst = random_independent_instance(2, 6, 10.0, 20.0, 5.0, 1e-3);
        assert!(properties::is_independent(inst.graph()));
    }

    #[test]
    fn dag_instance_helpers_are_deterministic() {
        let a = wide_fork_join_instance(3, 8, 100.0, 200.0, 50.0, 1e-4);
        let b = wide_fork_join_instance(3, 8, 100.0, 200.0, 50.0, 1e-4);
        assert_eq!(a, b);
        assert_eq!(a.task_count(), 10);
        assert_eq!(properties::width(a.graph()), 8);
        let c = random_layered_instance(4, &[3, 5, 4], 0.4, 50.0, 150.0, 40.0, 1e-4);
        let d = random_layered_instance(4, &[3, 5, 4], 0.4, 50.0, 150.0, 40.0, 1e-4);
        assert_eq!(c, d);
        assert_eq!(c.task_count(), 12);
    }

    #[test]
    fn heterogeneous_chain_is_deterministic_and_chain_shaped() {
        let a = heterogeneous_chain_instance(7, 12, 1e-4);
        let b = heterogeneous_chain_instance(7, 12, 1e-4);
        assert_eq!(a, b);
        assert!(properties::is_chain(a.graph()));
        assert_eq!(a.downtime(), 30.0);
        assert_eq!(a.initial_recovery(), 20.0);
    }

    #[test]
    fn layered_proptest_case_is_deterministic_with_a_valid_order() {
        let (a, order_a) = random_layered_proptest_case(42);
        let (b, order_b) = random_layered_proptest_case(42);
        assert_eq!(a, b);
        assert_eq!(order_a, order_b);
        assert!(ckpt_dag::topo::is_topological_order(a.graph(), &order_a));
    }

    /// The migration contract of the ISSUE-5 satellite: the deduplicated
    /// generators reproduce the **legacy inline generators byte for byte**
    /// at the same seeds. Each legacy body below is the verbatim code that
    /// used to live at the named call site.
    mod legacy_migration {
        use super::*;

        /// Formerly `random_chain_instance` in `tests/chain_dp_optimality.rs`.
        fn legacy_hetero_chain(seed: u64, n: usize, lambda: f64) -> ProblemInstance {
            let mut rng = Pcg64::seed_from_u64(seed);
            let weights: Vec<f64> = (0..n).map(|_| 100.0 + rng.next_f64() * 3_900.0).collect();
            let checkpoints: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 290.0).collect();
            let recoveries: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 590.0).collect();
            let graph = generators::chain(&weights).unwrap();
            ProblemInstance::builder(graph)
                .checkpoint_costs(checkpoints)
                .recovery_costs(recoveries)
                .downtime(30.0)
                .initial_recovery(20.0)
                .platform_lambda(lambda)
                .build()
                .unwrap()
        }

        /// Formerly `random_dag_case` in `ckpt-core`'s
        /// `cost_model::sweep_properties`.
        fn legacy_random_dag_case(seed: u64) -> (ProblemInstance, Vec<TaskId>) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let layer_count = 2 + (rng.next_u64() % 4) as usize;
            let layers: Vec<usize> =
                (0..layer_count).map(|_| 1 + (rng.next_u64() % 5) as usize).collect();
            let edge_prob = 0.2 + rng.next_f64() * 0.6;
            let mut coin_rng = rng.derive(1);
            let graph = generators::layered_random(
                &layers,
                |_, _| 10.0 + 90.0 * ((seed % 7) as f64 + 1.0),
                edge_prob,
                move || coin_rng.next_f64(),
            )
            .unwrap();
            let n = graph.task_count();
            let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
            let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
            let order = linearize::linearize(&graph, LinearizationStrategy::Random(seed ^ 0xA5));
            let inst = ProblemInstance::builder(graph)
                .checkpoint_costs(ckpt)
                .recovery_costs(rec)
                .platform_lambda(1e-4)
                .build()
                .unwrap();
            (inst, order)
        }

        #[test]
        fn heterogeneous_chain_matches_the_legacy_integration_test_generator() {
            for seed in [0u64, 1, 7, 100, 4242, 31337] {
                for (n, lambda) in [(5usize, 1.0 / 2_500.0), (12, 1.0 / 6_000.0), (30, 1e-4)] {
                    assert_eq!(
                        heterogeneous_chain_instance(seed, n, lambda),
                        legacy_hetero_chain(seed, n, lambda),
                        "seed {seed}, n {n}"
                    );
                }
            }
        }

        #[test]
        fn layered_proptest_case_matches_the_legacy_core_generator() {
            for seed in [0u64, 1, 2, 17, 0xDEAD_BEEF, u64::MAX] {
                let (inst, order) = random_layered_proptest_case(seed);
                let (legacy_inst, legacy_order) = legacy_random_dag_case(seed);
                assert_eq!(inst, legacy_inst, "seed {seed}");
                assert_eq!(order, legacy_order, "seed {seed}");
            }
        }
    }
}

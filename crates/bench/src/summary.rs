//! Machine-readable experiment summaries.
//!
//! Every experiment binary prints its human-readable ASCII tables and, when
//! invoked with `--json` (print a single JSON line to stdout) or
//! `--json=PATH` (write the same object to a file), also emits its key
//! metrics as one flat JSON object — so CI and PR-over-PR tooling can track
//! the bench trajectory without scraping tables.
//!
//! The offline build has no `serde`; this is a deliberately minimal writer
//! for the flat `{"string": number-or-string}` shape the summaries need.
//! Keys are inserted in call order and preserved.

use std::fmt::Write as _;

use ckpt_telemetry::json::{json_number, json_string};

/// A flat, ordered JSON object of experiment metrics.
#[derive(Debug, Clone)]
pub struct JsonSummary {
    fields: Vec<(String, String)>,
}

impl JsonSummary {
    /// A summary carrying the experiment name as its first field.
    pub fn new(experiment: &str) -> Self {
        let mut summary = JsonSummary { fields: Vec::new() };
        summary.push_raw("experiment", json_string(experiment));
        summary
    }

    /// Adds a numeric metric (non-finite values serialise as `null`).
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.push_raw(key, json_number(value));
        self
    }

    /// Adds an integer metric.
    pub fn count(&mut self, key: impl Into<String>, value: usize) -> &mut Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a string field.
    pub fn text(&mut self, key: impl Into<String>, value: &str) -> &mut Self {
        self.push_raw(key, json_string(value));
        self
    }

    fn push_raw(&mut self, key: impl Into<String>, rendered: String) {
        self.fields.push((key.into(), rendered));
    }

    /// The summary as one JSON object (single line, insertion order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (index, (key, value)) in self.fields.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(key), value);
        }
        out.push('}');
        out
    }

    /// Honours the process arguments: `--json` prints the object as the
    /// final stdout line, `--json=PATH` writes it to `PATH`. Without either
    /// flag this is a no-op, so binaries can call it unconditionally.
    pub fn emit(&self) {
        for arg in std::env::args().skip(1) {
            if arg == "--json" {
                println!("{}", self.to_json());
            } else if let Some(path) = arg.strip_prefix("--json=") {
                if let Err(error) = std::fs::write(path, self.to_json() + "\n") {
                    eprintln!("failed to write JSON summary to {path}: {error}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_ordered_json() {
        let mut summary = JsonSummary::new("e11_adaptive");
        summary
            .metric("static_makespan", 12_345.5)
            .metric("bad", f64::NAN)
            .count("trials", 2_000)
            .text("scenario", "4x misspecified");
        assert_eq!(
            summary.to_json(),
            "{\"experiment\":\"e11_adaptive\",\"static_makespan\":12345.5,\
             \"bad\":null,\"trials\":2000,\"scenario\":\"4x misspecified\"}"
        );
    }

    #[test]
    fn escapes_strings() {
        let mut summary = JsonSummary::new("x");
        summary.text("key \"quoted\"", "line\nbreak\\slash\u{1}");
        assert_eq!(
            summary.to_json(),
            "{\"experiment\":\"x\",\"key \\\"quoted\\\"\":\"line\\nbreak\\\\slash\\u0001\"}"
        );
    }

    #[test]
    fn numbers_round_trip_display() {
        assert_eq!(json_number(0.000015), "0.000015");
        assert_eq!(json_number(-3.0), "-3");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}

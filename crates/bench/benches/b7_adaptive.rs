//! B7 — the online-policy subsystem: policy-driven execution overhead
//! against the fixed-schedule engine, adaptive policies against the static
//! replay, and the suffix-only re-plan against a full Algorithm 1 solve.

use ckpt_adaptive::{optimal_static_plan, AdaptiveResolve, RateLearning, StaticPlan};
use ckpt_core::chain_dp::ResumableDp;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_simulator::SimulationScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const PLANNING_RATE: f64 = 1.0 / 40_000.0;
const TRUE_RATE: f64 = 10.0 / 40_000.0;

fn spec(n: usize) -> ckpt_adaptive::ChainSpec {
    let mut rng = Pcg64::seed_from_u64(0xB7);
    let weights: Vec<f64> = (0..n).map(|_| 200.0 + rng.next_f64() * 600.0).collect();
    let ckpt: Vec<f64> = (0..n).map(|_| 20.0 + rng.next_f64() * 40.0).collect();
    let rec: Vec<f64> = (0..n).map(|_| 30.0 + rng.next_f64() * 60.0).collect();
    ckpt_adaptive::ChainSpec::new(&weights, &ckpt, &rec, 30.0, 10.0).unwrap()
}

/// Monte-Carlo throughput: the fixed-schedule engine on the static plan's
/// segments vs the policy engine replaying the same plan vs the adaptive
/// policies (which pay estimate updates and re-solves on top).
fn bench_policy_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_monte_carlo");
    group.sample_size(10);
    let spec = spec(40);
    let trials = 200usize;
    let scenario = || {
        SimulationScenario::exponential(TRUE_RATE)
            .with_downtime(spec.downtime())
            .with_trials(trials)
            .with_seed(7)
            .with_threads(1)
    };
    let placement = optimal_static_plan(&spec, PLANNING_RATE).unwrap();

    // Fixed-schedule engine baseline: the same plan as segments.
    let flags = placement.checkpoint_after();
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut recovery = spec.initial_recovery();
    for (j, &ckpt) in flags.iter().enumerate() {
        if ckpt {
            let work: f64 = (start..=j).map(|p| spec.tasks()[p].work()).sum();
            segments.push(
                ckpt_simulator::Segment::new(work, spec.tasks()[j].checkpoint(), recovery).unwrap(),
            );
            recovery = spec.tasks()[j].recovery();
            start = j + 1;
        }
    }
    group.bench_function(BenchmarkId::new("fixed_engine", trials), |b| {
        b.iter(|| scenario().run(black_box(&segments)))
    });

    let static_proto = StaticPlan::from_placement(&placement);
    group.bench_function(BenchmarkId::new("policy_static", trials), |b| {
        b.iter(|| {
            scenario()
                .run_policy(black_box(spec.tasks()), spec.initial_recovery(), |_| {
                    static_proto.clone()
                })
                .unwrap()
        })
    });

    let adaptive_proto = AdaptiveResolve::new(&spec, PLANNING_RATE).unwrap();
    group.bench_function(BenchmarkId::new("policy_adaptive_resolve", trials), |b| {
        b.iter(|| {
            scenario()
                .run_policy(black_box(spec.tasks()), spec.initial_recovery(), |_| {
                    adaptive_proto.clone()
                })
                .unwrap()
        })
    });

    let learning_proto = RateLearning::new(&spec, PLANNING_RATE).unwrap();
    group.bench_function(BenchmarkId::new("policy_rate_learning", trials), |b| {
        b.iter(|| {
            scenario()
                .run_policy(black_box(spec.tasks()), spec.initial_recovery(), |_| {
                    learning_proto.clone()
                })
                .unwrap()
        })
    });
    group.finish();
}

/// Re-planning cost: a full Algorithm 1 solve of an n-position table vs the
/// suffix-only re-solve from the midpoint (what a mid-execution re-plan
/// actually pays).
fn bench_replan(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan");
    group.sample_size(10);
    for n in [512usize, 4_096] {
        let spec = spec(n);
        let table = spec.sweep().table_for(TRUE_RATE).unwrap();
        group.bench_with_input(BenchmarkId::new("full_solve", n), &table, |b, table| {
            let mut dp = ResumableDp::new();
            b.iter(|| dp.solve(black_box(table)))
        });
        group.bench_with_input(BenchmarkId::new("suffix_from_mid", n), &table, |b, table| {
            let mut dp = ResumableDp::new();
            dp.solve(table);
            b.iter(|| dp.solve_suffix(black_box(table), n / 2))
        });
        group.bench_with_input(BenchmarkId::new("suffix_last_64", n), &table, |b, table| {
            let mut dp = ResumableDp::new();
            dp.solve(table);
            b.iter(|| dp.solve_suffix(black_box(table), n - 64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_monte_carlo, bench_replan);
criterion_main!(benches);

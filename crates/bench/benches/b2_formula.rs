//! B2 — cost of evaluating Proposition 1 and of evaluating a whole schedule.

use ckpt_bench::random_chain_instance;
use ckpt_core::{evaluate, Schedule};
use ckpt_dag::properties;
use ckpt_expectation::exact::{expected_time, ExecutionParams};
use ckpt_expectation::optimal_period::optimal_period;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_formula(c: &mut Criterion) {
    let params = ExecutionParams::new(3_600.0, 300.0, 60.0, 300.0, 1.0 / 86_400.0).unwrap();
    c.bench_function("proposition1_closed_form", |b| b.iter(|| expected_time(black_box(&params))));

    c.bench_function("optimal_period_golden_section", |b| {
        b.iter(|| optimal_period(black_box(300.0), 60.0, 300.0, 1.0 / 86_400.0).unwrap())
    });

    let instance = random_chain_instance(3, 256, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 10_000.0);
    let order = properties::as_chain(instance.graph()).unwrap();
    let schedule = Schedule::checkpoint_everywhere(&instance, order).unwrap();
    c.bench_function("expected_makespan_256_segments", |b| {
        b.iter(|| evaluate::expected_makespan(black_box(&instance), black_box(&schedule)).unwrap())
    });
}

criterion_group!(benches, bench_formula);
criterion_main!(benches);

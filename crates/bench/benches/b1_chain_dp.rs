//! B1 — scaling of the Algorithm 1 chain DP across its five formulations.
//!
//! The headline comparison of the fast-path overhaul: the naive `O(n²)` DP
//! (`reference`, two `exp` calls per cell) against the precomputed-cost
//! pruned DP (`pruned`, the production path), the `O(n log n)` Li Chao
//! divide-and-conquer solver (`divide_conquer`) and the blocked
//! index-space divide and conquer (`blocked`), plus the paper's memoised
//! recursion. The 4096-task configuration is the acceptance benchmark: the
//! pruned DP must beat the reference by ≥ 5×.
//!
//! The `chain_dp_large` group is the `n ≫ 10⁵` scaling acceptance of the
//! blocked solver: only the envelope formulations run there (the quadratic
//! ones would take hours at `n = 10⁶`), on a λ chosen so the table stays
//! out of its saturated fallback (`λ·total work ≈ 10` at `n = 10⁵`, `≈ 105`
//! at `n = 10⁶`). The `blocked_scratch_reuse` entry is the same solver
//! through a caller-owned `ChainDpScratch`, isolating the allocator-traffic
//! cost the arena removes.

use ckpt_bench::random_chain_instance;
use ckpt_core::chain_dp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chain_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_dp");
    group.sample_size(10);
    for &n in &[32usize, 128, 512, 1024, 4096] {
        let instance =
            random_chain_instance(7, n, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 10_000.0);
        group.bench_with_input(BenchmarkId::new("reference", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_reference(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("divide_conquer", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_divide_conquer(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_blocked(black_box(inst)).unwrap())
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("memoized", n), &instance, |b, inst| {
                b.iter(|| chain_dp::optimal_chain_value_memoized(black_box(inst)).unwrap())
            });
        }
    }

    // A failure-heavy regime: many checkpoints in the optimum, so the pruning
    // bound truncates the inner loop aggressively.
    let frequent = random_chain_instance(11, 4096, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 1_000.0);
    group.bench_with_input(
        BenchmarkId::new("pruned_frequent_failures", 4096),
        &frequent,
        |b, inst| b.iter(|| chain_dp::optimal_chain_schedule(black_box(inst)).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("divide_conquer_frequent_failures", 4096),
        &frequent,
        |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_divide_conquer(black_box(inst)).unwrap())
        },
    );
    group.bench_with_input(
        BenchmarkId::new("blocked_frequent_failures", 4096),
        &frequent,
        |b, inst| b.iter(|| chain_dp::optimal_chain_schedule_blocked(black_box(inst)).unwrap()),
    );
    group.finish();
}

fn bench_chain_dp_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_dp_large");
    group.sample_size(3);
    // λ = 1e-7 keeps λ·total work ≈ 10 (n = 10⁵) / 105 (n = 10⁶): far from
    // the table's saturated fallback, with a non-trivial optimum (the
    // optimal placement checkpoints every few dozen tasks).
    for &n in &[100_000usize, 1_000_000] {
        let instance = random_chain_instance(7, n, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1e-7);
        group.bench_with_input(BenchmarkId::new("divide_conquer", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_divide_conquer(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_blocked(black_box(inst)).unwrap())
        });
        // Caller-owned scratch arena: same solver, no per-solve allocation of
        // the block-local Li Chao buffers and envelope scratch (~1 000
        // transient allocations per solve at n = 10⁶ otherwise).
        let mut scratch = chain_dp::ChainDpScratch::new();
        group.bench_with_input(
            BenchmarkId::new("blocked_scratch_reuse", n),
            &instance,
            |b, inst| {
                b.iter(|| {
                    chain_dp::optimal_chain_schedule_blocked_with_scratch(
                        black_box(inst),
                        &mut scratch,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chain_dp, bench_chain_dp_large);
criterion_main!(benches);

//! B1 — scaling of the Algorithm 1 chain DP across its four formulations.
//!
//! The headline comparison of the fast-path overhaul: the naive `O(n²)` DP
//! (`reference`, two `exp` calls per cell) against the precomputed-cost
//! pruned DP (`pruned`, the production path) and the `O(n log n)` Li Chao
//! divide-and-conquer solver (`divide_conquer`), plus the paper's memoised
//! recursion. The 4096-task configuration is the acceptance benchmark: the
//! pruned DP must beat the reference by ≥ 5×.

use ckpt_bench::random_chain_instance;
use ckpt_core::chain_dp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chain_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_dp");
    group.sample_size(10);
    for &n in &[32usize, 128, 512, 1024, 4096] {
        let instance =
            random_chain_instance(7, n, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 10_000.0);
        group.bench_with_input(BenchmarkId::new("reference", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_reference(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("divide_conquer", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_divide_conquer(black_box(inst)).unwrap())
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("memoized", n), &instance, |b, inst| {
                b.iter(|| chain_dp::optimal_chain_value_memoized(black_box(inst)).unwrap())
            });
        }
    }

    // A failure-heavy regime: many checkpoints in the optimum, so the pruning
    // bound truncates the inner loop aggressively.
    let frequent = random_chain_instance(11, 4096, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 1_000.0);
    group.bench_with_input(
        BenchmarkId::new("pruned_frequent_failures", 4096),
        &frequent,
        |b, inst| b.iter(|| chain_dp::optimal_chain_schedule(black_box(inst)).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("divide_conquer_frequent_failures", 4096),
        &frequent,
        |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule_divide_conquer(black_box(inst)).unwrap())
        },
    );
    group.finish();
}

criterion_group!(benches, bench_chain_dp);
criterion_main!(benches);

//! B1 — scaling of the Algorithm 1 chain DP (bottom-up vs memoised recursive).
//!
//! The ablation called out in DESIGN.md: both formulations are `O(n²)`; the
//! bottom-up version avoids the recursion and memo-table overhead.

use ckpt_bench::random_chain_instance;
use ckpt_core::chain_dp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chain_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_dp");
    for &n in &[32usize, 128, 512, 1024] {
        let instance =
            random_chain_instance(7, n, 100.0, 2_000.0, 60.0, 90.0, 30.0, 1.0 / 10_000.0);
        group.bench_with_input(BenchmarkId::new("bottom_up", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_schedule(black_box(inst)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("memoized", n), &instance, |b, inst| {
            b.iter(|| chain_dp::optimal_chain_value_memoized(black_box(inst)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_dp);
criterion_main!(benches);

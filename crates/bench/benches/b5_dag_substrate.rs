//! B5 — DAG-substrate operations: generation, topological sorting,
//! linearisation and transitive closure.

use ckpt_dag::{generators, linearize, topo, traversal, LinearizationStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_substrate");

    for &n in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("build_chain", n), &n, |b, &n| {
            b.iter(|| generators::uniform_chain(black_box(n), 1.0).unwrap())
        });
        let chain = generators::uniform_chain(n, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::new("topological_sort_chain", n), &chain, |b, g| {
            b.iter(|| topo::topological_sort(black_box(g)))
        });
    }

    // A layered random DAG exercises linearisation and reachability.
    let mut state = 42u64;
    let coin = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let layered = generators::layered_random(&[50, 50, 50, 50], |_, _| 1.0, 0.1, coin).unwrap();
    group.bench_function("linearize_critical_path_200_tasks", |b| {
        b.iter(|| {
            linearize::linearize(black_box(&layered), LinearizationStrategy::CriticalPathFirst)
        })
    });
    group.bench_function("transitive_closure_200_tasks", |b| {
        b.iter(|| traversal::transitive_closure(black_box(&layered)))
    });
    group.finish();
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);

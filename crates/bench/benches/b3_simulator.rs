//! B3 — simulator throughput: trials per second for exponential and Weibull
//! platforms, single- and multi-segment schedules, and the thread-scaling of
//! the parallel Monte-Carlo driver (outcomes are bit-identical at any thread
//! count, so the speedup is free).

use ckpt_failure::Weibull;
use ckpt_simulator::{Segment, SimulationScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let single = vec![Segment::new(3_600.0, 120.0, 60.0).unwrap()];
    let multi: Vec<Segment> =
        (0..32).map(|i| Segment::new(500.0 + 50.0 * i as f64, 60.0, 90.0).unwrap()).collect();

    for (name, segments) in [("single_segment", &single), ("32_segments", &multi)] {
        group.bench_with_input(
            BenchmarkId::new("exponential_1000_trials", name),
            segments,
            |b, segs| {
                b.iter(|| {
                    SimulationScenario::exponential(1.0 / 5_000.0)
                        .with_downtime(30.0)
                        .with_trials(1_000)
                        .with_seed(1)
                        .run(black_box(segs))
                })
            },
        );
    }

    // High-trial configuration: the parallel fast path. One thread vs all
    // cores on the same 100k-trial workload.
    for &threads in &[1usize, 0] {
        let label = if threads == 0 { "all_cores" } else { "1_thread" };
        group.bench_with_input(
            BenchmarkId::new("exponential_100k_trials", label),
            &multi,
            |b, segs| {
                b.iter(|| {
                    SimulationScenario::exponential(1.0 / 5_000.0)
                        .with_downtime(30.0)
                        .with_trials(100_000)
                        .with_seed(3)
                        .with_threads(threads)
                        .run(black_box(segs))
                })
            },
        );
    }

    group.bench_function("weibull_platform_500_trials", |b| {
        b.iter(|| {
            SimulationScenario::platform(16, Weibull::with_mean(0.7, 80_000.0).unwrap())
                .with_downtime(30.0)
                .with_trials(500)
                .with_seed(2)
                .run(black_box(&single))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

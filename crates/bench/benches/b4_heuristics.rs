//! B4 — heuristic scaling on independent-task instances (the NP-hard setting).

use ckpt_bench::random_independent_instance;
use ckpt_core::heuristics;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("independent_heuristics");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        let instance = random_independent_instance(5, n, 200.0, 3_000.0, 150.0, 1.0 / 20_000.0);
        group.bench_with_input(
            BenchmarkId::new("lpt_young_local_search", n),
            &instance,
            |b, inst| {
                b.iter(|| heuristics::independent_tasks_heuristic(black_box(inst), 2).unwrap())
            },
        );
        group.bench_with_input(BenchmarkId::new("young_periodic_only", n), &instance, |b, inst| {
            b.iter(|| {
                let order = heuristics::lpt_order(black_box(inst)).unwrap();
                heuristics::young_periodic_schedule(inst, order).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);

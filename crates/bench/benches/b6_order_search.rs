//! B6 — the linearisation-search subsystem: §6 live-set cost-table builds
//! (incremental `O(n + E)` sweep vs the recomputing reference) and the
//! order search itself against the fixed-strategy baseline it dominates.
//!
//! The headline acceptance number (≥ 5× table-build speedup at 10⁴ tasks)
//! is produced by the `e10_order_search` binary, which runs each build once
//! at full size; this bench tracks the same comparison at sizes that stay
//! cheap under the smoke-test mode `cargo test` runs benches in.

use ckpt_bench::{random_layered_instance, wide_fork_join_instance};
use ckpt_core::cost_model::CheckpointCostModel;
use ckpt_core::dag_schedule;
use ckpt_core::order_search::{schedule_dag_search, OrderSearchConfig};
use ckpt_dag::{linearize, LinearizationStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_live_set_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_set_table");
    group.sample_size(10);
    for &branches in &[250usize, 1_000] {
        let inst = wide_fork_join_instance(7, branches, 100.0, 2_000.0, 80.0, 1e-6);
        let order = linearize::linearize(inst.graph(), LinearizationStrategy::IdOrder);
        let n = inst.task_count();
        for model in [CheckpointCostModel::LiveSetSum, CheckpointCostModel::LiveSetMax] {
            group.bench_with_input(
                BenchmarkId::new(format!("incremental_{model}"), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        dag_schedule::model_cost_table(black_box(inst), &order, model).unwrap()
                    })
                },
            );
        }
        // The recomputing reference, O(n·degree) per position: only at the
        // small size (at 10⁴ tasks one build takes seconds — see e10).
        if branches <= 250 {
            group.bench_with_input(
                BenchmarkId::new("recomputed_live-set-sum", n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        dag_schedule::model_cost_table_reference(
                            black_box(inst),
                            &order,
                            CheckpointCostModel::LiveSetSum,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    // The incremental sweep alone at the acceptance size.
    let wide = wide_fork_join_instance(7, 9_998, 100.0, 2_000.0, 80.0, 1e-6);
    let order = linearize::linearize(wide.graph(), LinearizationStrategy::IdOrder);
    group.bench_with_input(
        BenchmarkId::new("incremental_live-set-sum", 10_000),
        &wide,
        |b, inst| {
            b.iter(|| {
                dag_schedule::model_cost_table(
                    black_box(inst),
                    &order,
                    CheckpointCostModel::LiveSetSum,
                )
                .unwrap()
            })
        },
    );
    group.finish();
}

fn bench_order_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_search");
    group.sample_size(10);
    let inst =
        random_layered_instance(5, &[8, 8, 8, 8, 8], 0.3, 150.0, 1_200.0, 120.0, 1.0 / 4_000.0);
    let model = CheckpointCostModel::LiveSetSum;
    group.bench_with_input(BenchmarkId::new("best_of", 40), &inst, |b, inst| {
        b.iter(|| dag_schedule::schedule_dag_best_of(black_box(inst), model, 8).unwrap())
    });
    for (label, threads) in [("search_1thread", 1usize), ("search_all_cores", 0)] {
        let config = OrderSearchConfig { restarts: 8, steps: 256, threads, ..Default::default() };
        group.bench_with_input(BenchmarkId::new(label, 40), &inst, |b, inst| {
            b.iter(|| schedule_dag_search(black_box(inst), model, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_live_set_table, bench_order_search);
criterion_main!(benches);

//! B9 — the cluster tier: event-driven multi-machine simulation throughput
//! (one Monte-Carlo batch per policy) and the correlated-shock injector's
//! query cost.

use std::sync::Arc;

use ckpt_adaptive::ChainSpec;
use ckpt_cluster::{
    run_cluster_monte_carlo, run_cluster_monte_carlo_with_metrics, BaselinePolicy, ClusterConfig,
    ClusterPolicy, ClusterRepair, ClusterScenario,
};
use ckpt_failure::{
    ClusterFailureInjector, Exponential, FailureDistribution, Pcg64, RandomSource, ShockConfig,
};
use ckpt_telemetry::MetricsRegistry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const MTBF: f64 = 4_000.0;
const TRIALS: usize = 100;

fn job_mix(jobs: usize) -> Vec<ChainSpec> {
    let mut rng = Pcg64::seed_from_u64(0xB9);
    (0..jobs)
        .map(|_| {
            let tasks = 6 + (rng.next_u64() % 5) as usize;
            let works: Vec<f64> = (0..tasks).map(|_| 100.0 + rng.next_f64() * 100.0).collect();
            ChainSpec::new(&works, &vec![12.0; tasks], &vec![18.0; tasks], 20.0, 5.0)
                .expect("valid chain")
        })
        .collect()
}

fn scenario(machines: usize, jobs: usize) -> ClusterScenario {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(MTBF).expect("valid MTBF"));
    ClusterScenario::new(machines, law, 1.0 / MTBF, job_mix(jobs))
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 2_000.0, 0.5, 60.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(500.0))
        .expect("valid repair")
        .with_config(
            ClusterConfig::default()
                .with_migration_overhead(60.0)
                .expect("valid overhead")
                .with_replication_checkpoint_factor(1.3)
                .expect("valid factor"),
        )
        .with_trials(TRIALS)
        .with_seed(0xB9)
        .with_threads(1)
}

/// One single-threaded Monte-Carlo batch per baseline policy: the per-trial
/// cost of the event loop, the episode simulation and the shock injector.
fn bench_cluster_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_monte_carlo");
    group.sample_size(10);
    let policies: [(&str, BaselinePolicy); 3] = [
        ("checkpoint_only", BaselinePolicy::CheckpointOnly),
        ("always_migrate", BaselinePolicy::AlwaysMigrate),
        ("replicate_top_2", BaselinePolicy::ReplicateTopK { k: 2 }),
    ];
    let sc = scenario(6, 8);
    for (name, policy) in policies {
        group.bench_function(BenchmarkId::new(name, TRIALS), |b| {
            b.iter(|| {
                run_cluster_monte_carlo(black_box(&sc), || {
                    Box::new(policy) as Box<dyn ClusterPolicy>
                })
                .expect("cluster run")
            })
        });
    }
    group.finish();
}

/// Pool-size scaling of the engine at a fixed jobs-per-machine load.
fn bench_cluster_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    for machines in [2usize, 4, 8, 16] {
        let sc = scenario(machines, machines * 2).with_trials(25);
        group.bench_function(BenchmarkId::new("machines", machines), |b| {
            b.iter(|| {
                run_cluster_monte_carlo(black_box(&sc), || {
                    Box::new(BaselinePolicy::AlwaysMigrate) as Box<dyn ClusterPolicy>
                })
                .expect("cluster run")
            })
        });
    }
    group.finish();
}

/// Raw injector queries: the lazy shock materialisation on the hot path.
fn bench_injector_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_injector");
    let law = Exponential::from_mtbf(MTBF).expect("valid MTBF");
    for (name, width) in [("width_0", 0.0), ("width_600", 600.0)] {
        group.bench_function(BenchmarkId::new(name, 1000), |b| {
            b.iter(|| {
                let mut injector = ClusterFailureInjector::homogeneous(8, law, 0xB9)
                    .expect("valid pool")
                    .with_shocks(ShockConfig::new(1.0 / 500.0, 0.7, width).expect("valid shocks"));
                let mut total = 0.0;
                for q in 0..1000u64 {
                    let machine = (q % 8) as usize;
                    let t = injector.next_failure_after(machine, q as f64 * 10.0);
                    total += t;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

/// Per-trial makespan spread of the reference policy batch, reported via
/// the metrics-recording Monte-Carlo runner: the `cluster_makespan`
/// histogram's quantile API gives the p50/p99 (simulated time, not wall
/// time) without re-sorting the sample vector.
fn report_makespan_tail(_c: &mut Criterion) {
    let sc = scenario(6, 8);
    let mut metrics = MetricsRegistry::new();
    let outcome = run_cluster_monte_carlo_with_metrics(
        black_box(&sc),
        || Box::new(BaselinePolicy::AlwaysMigrate) as Box<dyn ClusterPolicy>,
        &mut metrics,
    )
    .expect("cluster run");
    let makespans = metrics.histogram("cluster_makespan").expect("recorded histogram");
    let q = |p: f64| makespans.quantile(p).expect("non-empty makespan histogram");
    println!(
        "cluster_makespan_tail/trials={}: mean {:.0}, p50 {:.0}, p99 {:.0} (sim s)",
        outcome.trials,
        outcome.makespan.mean,
        q(0.50),
        q(0.99)
    );
}

criterion_group!(
    benches,
    bench_cluster_monte_carlo,
    bench_cluster_scaling,
    bench_injector_queries,
    report_makespan_tail
);
criterion_main!(benches);

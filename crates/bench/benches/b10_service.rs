//! B10 — the planner-as-a-service tier: sustained plans/sec under a Zipf
//! fleet workload mix, and the tail latency of the paths a single request
//! can take (cache hit, sweep solve at a new rate, suffix re-plan).

use ckpt_bench::testgen;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_service::{PlanInstance, PlanRequest, Planner, RateBucketing};
use ckpt_telemetry::{HistogramSpec, LogHistogram};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SEED: u64 = 0xB10;
const SHAPES: usize = 24;
const REQUESTS: usize = 1_000;
const BATCH: usize = 128;

fn bucketing() -> RateBucketing {
    RateBucketing::log_grid(1e-6, 1e-3, 13).expect("valid grid")
}

fn instances() -> Vec<PlanInstance> {
    (0..SHAPES)
        .map(|k| {
            let n = 16 + (k * 29) % 240;
            let problem = testgen::heterogeneous_chain_instance(SEED ^ ((k as u64) << 18), n, 1e-4);
            PlanInstance::from_chain_instance(&problem).expect("chain instance")
        })
        .collect()
}

/// A Zipf-popular request stream with ~20% re-plans, like E14's.
fn stream() -> Vec<PlanRequest> {
    let shapes = instances();
    let ranks = testgen::zipf_ranks(SEED, SHAPES, 1.1, REQUESTS);
    let mut rng = Pcg64::seed_from_u64(SEED);
    let rates = [3e-5, 1e-4, 3e-4];
    ranks
        .into_iter()
        .enumerate()
        .map(|(id, rank)| {
            let instance = &shapes[rank];
            let rate = rates[rng.next_bounded(3) as usize] * rng.next_range(0.95, 1.05);
            if instance.len() > 1 && rng.next_bool(0.2) {
                let from = 1 + rng.next_bounded(instance.len() as u64 - 1) as usize;
                PlanRequest::replan(id as u64, instance.clone(), rate, from).expect("valid")
            } else {
                PlanRequest::plan(id as u64, instance.clone(), rate).expect("valid")
            }
        })
        .collect()
}

/// Sustained serving of the fleet stream, cold planner per iteration, at
/// 1 / 4 worker threads (bit-identical responses; the threads only buy
/// wall-clock on the miss-heavy first batches).
fn bench_sustained_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_stream");
    group.sample_size(10);
    let requests = stream();
    for threads in [1usize, 4] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let mut planner = Planner::new(bucketing()).with_threads(threads);
                let served: usize = requests
                    .chunks(BATCH)
                    .map(|chunk| planner.serve_batch(black_box(chunk)).len())
                    .sum();
                black_box(served)
            })
        });
    }
    group.finish();
}

/// Per-path single-request latency on a warm planner.
fn bench_request_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_paths");
    let instance = instances().remove(3);
    let n = instance.len();
    let hit = PlanRequest::plan(0, instance.clone(), 1e-4).expect("valid");
    let replan = PlanRequest::replan(1, instance.clone(), 1e-4, n - n / 4).expect("valid");

    // Warm planner: the hit path answers from the cache.
    let mut warm = Planner::new(bucketing());
    let _ = warm.serve_batch(std::slice::from_ref(&hit));
    group.bench_function(BenchmarkId::new("cache_hit", n), |b| {
        b.iter(|| black_box(warm.serve_batch(black_box(std::slice::from_ref(&hit)))))
    });
    group.bench_function(BenchmarkId::new("suffix_replan", n), |b| {
        b.iter(|| black_box(warm.serve_batch(black_box(std::slice::from_ref(&replan)))))
    });

    // Sweep solve: a cached order at an always-fresh rate (Exact buckets,
    // new λ bit pattern per iteration, so every serve stamps and solves).
    let mut sweeping = Planner::new(RateBucketing::Exact);
    let _ = sweeping.serve_batch(std::slice::from_ref(&hit));
    let mut tick = 0u64;
    group.bench_function(BenchmarkId::new("sweep_solve", n), |b| {
        b.iter(|| {
            tick += 1;
            let rate = 1e-4 * (1.0 + tick as f64 * 1e-9);
            let request = PlanRequest::plan(tick, instance.clone(), rate).expect("valid");
            black_box(sweeping.serve_batch(std::slice::from_ref(&request)))
        })
    });
    group.finish();
}

/// Tail-latency report over the fleet stream (batch size 1, warm cache):
/// per-request latencies land in a `ckpt-telemetry` log-bucketed histogram
/// and the quantiles come from its quantile API — the same estimator E14
/// and E15 report, so the bench and experiment numbers are comparable.
fn report_latency_tail(_c: &mut Criterion) {
    let requests = stream();
    let mut planner = Planner::new(bucketing());
    let mut latency = LogHistogram::new(HistogramSpec::default());
    for request in &requests {
        let t = std::time::Instant::now();
        let _ = black_box(planner.serve_batch(std::slice::from_ref(request)));
        latency.record(t.elapsed().as_secs_f64() * 1e6);
    }
    let q = |p: f64| latency.quantile(p).expect("non-empty latency histogram");
    println!(
        "service_latency_tail/requests={REQUESTS}: p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs",
        q(0.50),
        q(0.90),
        q(0.99)
    );
}

criterion_group!(benches, bench_sustained_stream, bench_request_paths, report_latency_tail);
criterion_main!(benches);

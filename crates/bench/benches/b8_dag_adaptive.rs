//! B8 — the online DAG tier: policy-driven DAG execution overhead against
//! the chain policy engine, the re-linearising policies against the static
//! replay, and the cost of one suffix re-linearisation (subgraph extraction
//! + bounded-budget order search).

use ckpt_adaptive::{
    optimal_static_dag_plan, DagAdaptiveResolve, DagRelinearise, DagSpec, DagStaticPlan,
};
use ckpt_bench::random_layered_instance;
use ckpt_core::cost_model::CheckpointCostModel;
use ckpt_core::order_search::{search_from_starts, OrderSearchConfig};
use ckpt_core::ProblemInstance;
use ckpt_dag::subgraph::suffix_subgraph;
use ckpt_dag::TaskId;
use ckpt_simulator::SimulationScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const PLANNING_RATE: f64 = 1.0 / 40_000.0;
const TRUE_RATE: f64 = 10.0 / 40_000.0;

fn spec(layers: &[usize]) -> DagSpec {
    let instance =
        random_layered_instance(0xB8, layers, 0.45, 200.0, 1_400.0, 220.0, PLANNING_RATE);
    DagSpec::new(instance, CheckpointCostModel::PerLastTask).unwrap()
}

fn search() -> OrderSearchConfig {
    OrderSearchConfig { restarts: 4, steps: 256, threads: 1, ..Default::default() }
}

/// Monte-Carlo throughput of the DAG policy engine: static replay vs the
/// two re-planning policies (posterior updates, suffix re-solves, and for
/// the re-lineariser a bounded order search per observed failure).
fn bench_dag_policy_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_policy_monte_carlo");
    group.sample_size(10);
    let spec = spec(&[3, 4, 4, 4, 3]);
    let plan = optimal_static_dag_plan(&spec, PLANNING_RATE, &search()).unwrap();
    let order = plan.order_indices();
    let trials = 200usize;
    let scenario = || {
        SimulationScenario::exponential(TRUE_RATE)
            .with_downtime(spec.downtime())
            .with_trials(trials)
            .with_seed(7)
            .with_threads(1)
    };

    let static_proto = DagStaticPlan::from_plan(&plan);
    group.bench_function(BenchmarkId::new("dag_static", trials), |b| {
        b.iter(|| {
            scenario()
                .run_dag_policy(black_box(spec.tasks()), &order, spec.initial_recovery(), |_| {
                    static_proto.clone()
                })
                .unwrap()
        })
    });

    let resolve_proto = DagAdaptiveResolve::new(&spec, &plan, PLANNING_RATE).unwrap();
    group.bench_function(BenchmarkId::new("dag_adaptive_resolve", trials), |b| {
        b.iter(|| {
            scenario()
                .run_dag_policy(black_box(spec.tasks()), &order, spec.initial_recovery(), |_| {
                    resolve_proto.clone()
                })
                .unwrap()
        })
    });

    let relin_proto = DagRelinearise::new(&spec, &plan, PLANNING_RATE).unwrap();
    group.bench_function(BenchmarkId::new("dag_relinearise", trials), |b| {
        b.iter(|| {
            scenario()
                .run_dag_policy(black_box(spec.tasks()), &order, spec.initial_recovery(), |_| {
                    relin_proto.clone()
                })
                .unwrap()
        })
    });
    group.finish();
}

/// The cost of one suffix re-linearisation at increasing DAG widths:
/// remaining-graph extraction plus the bounded-budget seeded order search
/// (what `DagRelinearise` pays per observed failure).
fn bench_suffix_relinearisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_relinearisation");
    group.sample_size(10);
    for width in [4usize, 8, 16] {
        let spec = spec(&[width, width, width, width]);
        let plan = optimal_static_dag_plan(&spec, PLANNING_RATE, &search()).unwrap();
        let start = plan.order.len() / 3;
        let config = OrderSearchConfig { restarts: 2, steps: 48, threads: 1, ..Default::default() };
        group.bench_with_input(
            BenchmarkId::new("extract_and_search", spec.len()),
            &plan.order,
            |b, order| {
                b.iter(|| {
                    let sub = suffix_subgraph(spec.instance().graph(), black_box(order), start);
                    let inst = spec.instance();
                    let ckpt: Vec<f64> =
                        sub.tasks.iter().map(|&t| inst.checkpoint_cost(t)).collect();
                    let rec: Vec<f64> = sub.tasks.iter().map(|&t| inst.recovery_cost(t)).collect();
                    let mut builder = ProblemInstance::builder(sub.graph.clone());
                    builder
                        .checkpoint_costs(ckpt)
                        .recovery_costs(rec)
                        .initial_recovery(inst.initial_recovery())
                        .downtime(spec.downtime())
                        .platform_lambda(TRUE_RATE);
                    let sub_inst = builder.build().unwrap();
                    let starts: Vec<Vec<TaskId>> = vec![(0..sub.len()).map(TaskId).collect()];
                    search_from_starts(&sub_inst, spec.model(), &config, &starts).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dag_policy_monte_carlo, bench_suffix_relinearisation);
criterion_main!(benches);

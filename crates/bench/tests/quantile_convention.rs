//! Cross-check of the quantile rank convention across subsystems (ISSUE 10
//! satellite): the simulator's raw-sample `makespan_quantile` and the
//! telemetry tier's bucketed `LogHistogram::quantile` must agree on *which*
//! order statistic a given `q` names — both look up rank
//! `round((n − 1)·q)` — so a quantile read off raw samples and one read off
//! a histogram of the same samples can only differ by the histogram's
//! bucket resolution, never by a rank-off-by-one.

use ckpt_simulator::{Segment, SimulationScenario};
use ckpt_telemetry::{HistogramSpec, LogHistogram};

/// A quantile grid spanning the awkward spots of the rank convention:
/// the extremes, the median and two ranks where `floor`- and
/// `round`-based conventions disagree.
const QUANTILES: [f64; 7] = [0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

fn makespan_samples(trials: usize) -> Vec<f64> {
    let segments = vec![
        Segment::new(900.0, 40.0, 25.0).expect("valid segment"),
        Segment::new(1_400.0, 55.0, 30.0).expect("valid segment"),
        Segment::new(600.0, 35.0, 20.0).expect("valid segment"),
    ];
    SimulationScenario::exponential(8e-4)
        .with_downtime(30.0)
        .with_trials(trials)
        .with_seed(0x0A11CE)
        .run(&segments)
        .samples
}

/// The rank both conventions are documented to pick.
fn rank(n: usize, q: f64) -> usize {
    (((n - 1) as f64) * q).round() as usize
}

#[test]
fn simulator_quantile_is_the_shared_rank_order_statistic() {
    let segments = vec![Segment::new(1_000.0, 50.0, 25.0).expect("valid segment")];
    let outcome = SimulationScenario::exponential(1e-3)
        .with_downtime(30.0)
        .with_trials(501)
        .with_seed(7)
        .run(&segments);
    let mut sorted = outcome.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
    for q in QUANTILES {
        assert_eq!(
            outcome.makespan_quantile(q).to_bits(),
            sorted[rank(sorted.len(), q)].to_bits(),
            "makespan_quantile({q}) is not the round((n-1)q) order statistic"
        );
    }
}

#[test]
fn histogram_quantile_agrees_with_simulator_quantile_to_bucket_resolution() {
    let samples = makespan_samples(800);
    // A fine log-bucketed histogram: 1 s scale, 0.5 % growth, enough
    // buckets to cover any makespan this workload can produce.
    let growth = 1.005;
    let spec = HistogramSpec::new(1.0, growth, 4_000).expect("valid spec");
    let mut histogram = LogHistogram::new(spec);
    for &sample in &samples {
        histogram.record(sample);
    }
    assert_eq!(histogram.count(), samples.len() as u64);

    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
    for q in QUANTILES {
        let exact = sorted[rank(sorted.len(), q)];
        let bucketed = histogram.quantile(q).expect("non-empty histogram");
        // Same rank, so the only admissible error is the bucket width: the
        // histogram's representative sits within one growth factor of any
        // sample in its bucket. A rank-convention mismatch (e.g. floor vs
        // round) would jump a whole order statistic and blow this band on
        // the heavy upper tail.
        assert!(
            bucketed >= exact / growth && bucketed <= exact * growth,
            "quantile({q}): histogram {bucketed} vs exact {exact} exceeds the \
             {growth}x bucket resolution"
        );
    }
}

//! Golden-snapshot tests of the `--json` machine-readable summaries
//! (ISSUE 5 satellite): each experiment binary with a JSON surface is run
//! twice, its emitted object is parsed, the schema keys CI tooling depends
//! on are asserted present and non-null, and the two runs must agree
//! **byte for byte** on every non-timing metric — so the machine-readable
//! surface cannot silently drift (a renamed key, a lost metric, a
//! nondeterministic value).
//!
//! Gated to the `--release` CI pass: the binaries replay full experiments
//! (e10's 10⁴-task reference table build, e12's Monte-Carlo regret study),
//! far too slow under a debug build.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

/// Runs `binary --json=PATH`, asserting success, and returns the emitted
/// single-line JSON object.
fn run_with_json(binary: &str, tag: &str) -> String {
    let path: PathBuf = std::env::temp_dir().join(format!("ckpt_{tag}.json"));
    let status = Command::new(binary)
        .arg(format!("--json={}", path.display()))
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {binary}: {e}"));
    assert!(status.success(), "{binary} exited with {status}");
    let json = std::fs::read_to_string(&path).expect("summary file written");
    let _ = std::fs::remove_file(&path);
    json.trim_end().to_string()
}

/// Length of the quoted JSON string at the start of `s` (including both
/// quotes), honouring the writer's backslash escapes.
fn quoted_string_len(s: &str) -> usize {
    let bytes = s.as_bytes();
    assert_eq!(bytes.first(), Some(&b'"'), "expected a quoted string: {s}");
    let mut i = 1;
    loop {
        match bytes.get(i) {
            Some(b'\\') => i += 2,
            Some(b'"') => return i + 1,
            Some(_) => i += 1,
            None => panic!("unterminated string in: {s}"),
        }
    }
}

/// A minimal parser for the writer's flat `{"key":value}` shape
/// (`JsonSummary` emits escaped keys/strings and bare numbers): returns the
/// key → raw-value map in insertion order (BTreeMap for lookup; insertion
/// order is compared via the key vectors across runs).
fn parse_flat_object(json: &str) -> BTreeMap<String, String> {
    assert!(json.starts_with('{') && json.ends_with('}'), "not an object: {json}");
    let mut fields = BTreeMap::new();
    let mut rest = &json[1..json.len() - 1];
    while !rest.is_empty() {
        rest = rest.strip_prefix(',').unwrap_or(rest);
        let key_len = quoted_string_len(rest);
        let key = &rest[1..key_len - 1];
        let after = rest[key_len..].strip_prefix(':').expect("missing colon");
        let value_end = if after.starts_with('"') {
            quoted_string_len(after)
        } else {
            after.find(',').unwrap_or(after.len())
        };
        fields.insert(key.to_string(), after[..value_end].to_string());
        rest = &after[value_end..];
    }
    fields
}

/// The shared schema contract: run twice, parse, assert determinism, the
/// experiment name, and the presence of every expected non-null key.
/// Keys starting with one of `timing_prefixes` carry wall-clock
/// measurements: they must exist in both runs but their values are
/// legitimately nondeterministic and are excluded from the byte
/// comparison.
fn assert_summary_schema(
    binary: &str,
    experiment: &str,
    expected_keys: &[String],
    timing_prefixes: &[&str],
) {
    let first = run_with_json(binary, &format!("{experiment}_a"));
    let second = run_with_json(binary, &format!("{experiment}_b"));

    let fields = parse_flat_object(&first);
    let fields_again = parse_flat_object(&second);
    let keys: Vec<&String> = fields.keys().collect();
    let keys_again: Vec<&String> = fields_again.keys().collect();
    assert_eq!(keys, keys_again, "{experiment}: key set differs across two runs");
    for (key, value) in &fields {
        if timing_prefixes.iter().any(|p| key.starts_with(p)) {
            continue;
        }
        assert_eq!(
            Some(value),
            fields_again.get(key),
            "{experiment}: value of `{key}` differs across two runs"
        );
    }
    assert_eq!(
        fields.get("experiment").map(String::as_str),
        Some(format!("\"{experiment}\"").as_str()),
        "{experiment}: wrong experiment tag"
    );
    for key in expected_keys {
        let value =
            fields.get(key).unwrap_or_else(|| panic!("{experiment}: missing summary key `{key}`"));
        assert_ne!(value, "null", "{experiment}: key `{key}` is null");
        assert!(!value.is_empty(), "{experiment}: key `{key}` is empty");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e9_json_summary_schema_and_determinism() {
    let keys: Vec<String> = ["grid_points".to_string()]
        .into_iter()
        .chain(["1e-7", "3e-5", "1e-2"].iter().flat_map(|rate| {
            [format!("lambda_{rate}_optimal_makespan"), format!("lambda_{rate}_checkpoints")]
        }))
        .chain(["fixed_vs_optimal_at_max_rate".to_string()])
        .collect();
    assert_summary_schema(env!("CARGO_BIN_EXE_e9_lambda_sweep"), "e9_lambda_sweep", &keys, &[]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e10_json_summary_schema_and_determinism() {
    let mut keys: Vec<String> = Vec::new();
    for tasks in [102usize, 1_002, 10_000] {
        keys.push(format!("table_build_speedup_{tasks}_tasks"));
    }
    for scenario in ["chain_64", "fork_join_16", "fork_join_48", "layered_5x8", "layered_deep"] {
        for model in ["per-last-task", "live-set-sum", "live-set-max"] {
            keys.push(format!("gain_pct_{scenario}_{model}"));
        }
    }
    assert_summary_schema(
        env!("CARGO_BIN_EXE_e10_order_search"),
        "e10_order_search",
        &keys,
        &["table_build_speedup_"],
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e11_json_summary_schema_and_determinism() {
    let mut keys: Vec<String> = vec!["planning_rate".to_string(), "trials".to_string()];
    for scenario in ["true_rate", "rate_4x", "rate_10x", "weibull_10x", "trace_8x"] {
        for policy in
            ["clairvoyant", "static_plan", "periodic_young", "adaptive_resolve", "rate_learning"]
        {
            keys.push(format!("{scenario}_{policy}_makespan"));
        }
        keys.push(format!("{scenario}_horizon_exceeded_trials"));
    }
    assert_summary_schema(env!("CARGO_BIN_EXE_e11_adaptive"), "e11_adaptive", &keys, &[]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e12_json_summary_schema_and_determinism() {
    let mut keys: Vec<String> =
        vec!["planning_rate".to_string(), "trials".to_string(), "tasks".to_string()];
    for scenario in ["true_rate", "rate_4x", "rate_10x", "weibull_8x"] {
        for policy in ["clairvoyant", "dag_static", "dag_adaptive_resolve", "dag_relinearise"] {
            keys.push(format!("{scenario}_{policy}_makespan"));
        }
        keys.push(format!("{scenario}_relinearise_reorders"));
        keys.push(format!("{scenario}_horizon_exceeded_trials"));
    }
    keys.push("policy_dag_relinearisations_total".to_string());
    assert_summary_schema(env!("CARGO_BIN_EXE_e12_dag_adaptive"), "e12_dag_adaptive", &keys, &[]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e13_json_summary_schema_and_determinism() {
    let mut keys: Vec<String> = vec![
        "machines".to_string(),
        "jobs".to_string(),
        "trials".to_string(),
        "planning_rate".to_string(),
        "degradation_mean_waiting".to_string(),
        "degradation_max_queue_depth".to_string(),
        "failure_shocks_total".to_string(),
        "failure_shock_hits_total".to_string(),
        "failure_repairs_total".to_string(),
    ];
    for width in ["w0", "w150", "w1200"] {
        for policy in ["checkpoint_only", "always_migrate", "replicate_top_2", "setlur"] {
            keys.push(format!("{width}_{policy}_makespan"));
        }
        keys.push(format!("{width}_replication_advantage"));
    }
    assert_summary_schema(env!("CARGO_BIN_EXE_e13_cluster"), "e13_cluster", &keys, &[]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e16_json_summary_schema_and_determinism() {
    // E16 is pure analytic planning (no Monte-Carlo, no wall-clock keys):
    // every metric — the exhaustive-wall gap, the slot-monotonicity curve
    // and the λ-sweep gains — must be byte-identical between two runs.
    let keys: Vec<String> = [
        "exhaustive_max_gap",
        "exhaustive_candidates",
        "collapse_bitwise_checks_passed",
        "slots_0_makespan",
        "slots_4_makespan",
        "slots_8_makespan",
        "slots_8_improvement",
        "slots_8_fast_checkpoints",
        "sweep_points",
        "sweep_gain_at_min_lambda",
        "sweep_gain_at_mid_lambda",
        "sweep_gain_at_max_lambda",
        "sweep_fast_checkpoints_at_max_lambda",
        "sweep_total_checkpoints_at_max_lambda",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    assert_summary_schema(env!("CARGO_BIN_EXE_e16_storage"), "e16_storage", &keys, &[]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e14_json_summary_schema_and_determinism() {
    // The `timing_` keys carry wall-clock throughput/latency measurements;
    // everything else — the serving counters, the cache census and the
    // payload digest (total served makespan, checkpoint count) — must be
    // byte-identical between runs.
    let keys: Vec<String> = [
        "shapes",
        "hot_shapes",
        "requests",
        "batch",
        "cache_hits",
        "cold_solves",
        "sweep_solves",
        "suffix_replans",
        "cached_orders",
        "cached_plans",
        "timing_plans_per_sec",
        "total_expected_makespan",
        "checkpoints_served",
        "timing_p50_latency_us",
        "timing_p99_latency_us",
        "hot_requests",
        "hot_distinct_plans",
        "timing_hit_per_sec",
        "timing_cold_per_sec",
        "timing_hit_speedup",
        "big_n",
        "replan_tail",
        "timing_full_solve_ms",
        "timing_replan_us",
        "timing_replan_speedup",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    assert_summary_schema(env!("CARGO_BIN_EXE_e14_service"), "e14_service", &keys, &["timing_"]);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs release experiment binaries (see CI)")]
fn e15_json_summary_schema_and_determinism() {
    // E15 is the telemetry subsystem's own wall: the service/solver/cluster
    // counters, the makespan quantiles, the re-plan counters and — above
    // all — the sim-time trace digest must be byte-identical between two
    // runs. Only the `timing_` overhead ratios are wall-clock.
    let keys: Vec<String> = [
        "requests",
        "cluster_trials",
        "service_requests_total",
        "service_cache_hits_total",
        "service_cold_solves_total",
        "service_sweep_solves_total",
        "service_suffix_replans_total",
        "service_coalesced_total",
        "service_work_items_total",
        "service_batches_total",
        "solver_dp_positions_total",
        "solver_dp_candidates_total",
        "solver_dp_prune_breaks_total",
        "solver_full_solves_total",
        "solver_prefix_trials_total",
        "solver_suffix_solves_total",
        "solver_suffix_reused_positions_total",
        "solver_li_chao_inserts_total",
        "solver_li_chao_node_visits_total",
        "cluster_failures_total",
        "cluster_migrations_total",
        "cluster_failovers_total",
        "cluster_makespan_p50",
        "cluster_makespan_p99",
        "policy_adaptive_resolve_replans_total",
        "policy_rate_learning_replans_total",
        "sim_trace_digest",
        "sim_trace_events",
        "prometheus_lines",
        "timing_noop_overhead_ratio",
        "timing_live_overhead_ratio",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    assert_summary_schema(
        env!("CARGO_BIN_EXE_e15_telemetry"),
        "e15_telemetry",
        &keys,
        &["timing_"],
    );
}

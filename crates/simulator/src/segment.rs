//! Execution segments: the unit the simulator executes.

use crate::error::{ensure_non_negative, ensure_positive, SimulationError};

/// One execution segment: `work` seconds of computation followed by a
/// checkpoint of `checkpoint` seconds, protected by a recovery of `recovery`
/// seconds (the cost of restoring the state *from which the segment starts*
/// after a failure — `R_{i-1}` in the paper's chain notation, or `R₀` for the
/// first segment).
///
/// A schedule for the paper's model is simply a `Vec<Segment>`: the scheduler
/// in `ckpt-core` groups tasks between checkpoints and emits one segment per
/// group.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    work: f64,
    checkpoint: f64,
    recovery: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// * `work` — total work in the segment (must be > 0);
    /// * `checkpoint` — checkpoint cost at the end of the segment (≥ 0; use 0
    ///   when the schedule does not checkpoint after this segment's last task
    ///   *and* the segment is final);
    /// * `recovery` — cost of restoring the state the segment starts from
    ///   (≥ 0).
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if any argument is invalid.
    pub fn new(work: f64, checkpoint: f64, recovery: f64) -> Result<Self, SimulationError> {
        Ok(Segment {
            work: ensure_positive("work", work)?,
            checkpoint: ensure_non_negative("checkpoint", checkpoint)?,
            recovery: ensure_non_negative("recovery", recovery)?,
        })
    }

    /// The work duration of the segment.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// The checkpoint cost at the end of the segment.
    pub fn checkpoint(&self) -> f64 {
        self.checkpoint
    }

    /// The recovery cost protecting this segment.
    pub fn recovery(&self) -> f64 {
        self.recovery
    }

    /// The failure-free duration of the segment (`work + checkpoint`).
    pub fn attempt_duration(&self) -> f64 {
        self.work + self.checkpoint
    }
}

/// The failure-free makespan of a sequence of segments.
pub fn failure_free_makespan(segments: &[Segment]) -> f64 {
    segments.iter().map(Segment::attempt_duration).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Segment::new(1.0, 0.0, 0.0).is_ok());
        assert!(Segment::new(0.0, 1.0, 0.0).is_err());
        assert!(Segment::new(1.0, -1.0, 0.0).is_err());
        assert!(Segment::new(1.0, 0.0, -1.0).is_err());
        assert!(Segment::new(f64::INFINITY, 0.0, 0.0).is_err());
    }

    #[test]
    fn accessors() {
        let s = Segment::new(100.0, 10.0, 20.0).unwrap();
        assert_eq!(s.work(), 100.0);
        assert_eq!(s.checkpoint(), 10.0);
        assert_eq!(s.recovery(), 20.0);
        assert_eq!(s.attempt_duration(), 110.0);
    }

    #[test]
    fn failure_free_makespan_sums_segments() {
        let segs =
            vec![Segment::new(100.0, 10.0, 0.0).unwrap(), Segment::new(200.0, 20.0, 10.0).unwrap()];
        assert_eq!(failure_free_makespan(&segs), 330.0);
        assert_eq!(failure_free_makespan(&[]), 0.0);
    }
}

//! Adapters from the simulator's [`ExecutionEvent`] logs to `ckpt-telemetry`
//! trace events.
//!
//! [`simulate_with_log`](crate::simulate_with_log) and the policy runners
//! already produce chronological event logs; this module re-expresses them
//! as sim-domain [`TraceEvent`]s so they can flow into any
//! [`TelemetrySink`] — a ring buffer for interactive inspection, a JSONL
//! file for offline analysis, or a [`DigestSink`](ckpt_telemetry::DigestSink)
//! for byte-level determinism checks. The adapter is a pure function of the
//! log: replaying the same log always yields the same trace.

use crate::event_log::ExecutionEvent;
use ckpt_telemetry::{TelemetrySink, TraceEvent};

/// Converts one [`ExecutionEvent`] into a sim-domain [`TraceEvent`].
///
/// Event names mirror the enum variants in snake case (`attempt_started`,
/// `failure`, `downtime_completed`, `recovery_completed`,
/// `segment_completed`, `policy_decision`); every event carries the
/// `segment` field, failures add `wasted`, policy decisions add
/// `checkpoint`.
pub fn execution_event_to_trace(event: &ExecutionEvent) -> TraceEvent {
    match *event {
        ExecutionEvent::AttemptStarted { segment, time } => {
            TraceEvent::sim("attempt_started", time).with("segment", segment)
        }
        ExecutionEvent::Failure { segment, time, wasted } => {
            TraceEvent::sim("failure", time).with("segment", segment).with("wasted", wasted)
        }
        ExecutionEvent::DowntimeCompleted { segment, time } => {
            TraceEvent::sim("downtime_completed", time).with("segment", segment)
        }
        ExecutionEvent::RecoveryCompleted { segment, time } => {
            TraceEvent::sim("recovery_completed", time).with("segment", segment)
        }
        ExecutionEvent::SegmentCompleted { segment, time } => {
            TraceEvent::sim("segment_completed", time).with("segment", segment)
        }
        ExecutionEvent::PolicyDecision { segment, time, checkpoint } => {
            TraceEvent::sim("policy_decision", time)
                .with("segment", segment)
                .with("checkpoint", checkpoint)
        }
    }
}

/// Replays a whole execution log into `sink`, in log order.
///
/// Returns the number of events forwarded (`0` when the sink is disabled —
/// the conversion cost is skipped entirely, mirroring the engine-side
/// emission guards).
pub fn replay_log(events: &[ExecutionEvent], sink: &mut dyn TelemetrySink) -> usize {
    if !sink.enabled() {
        return 0;
    }
    for event in events {
        sink.record(&execution_event_to_trace(event));
    }
    events.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;
    use crate::simulate_with_log;
    use crate::stream::ScriptedStream;
    use ckpt_telemetry::{DigestSink, NoopSink, RingBufferSink, TimeDomain};

    fn logged() -> Vec<ExecutionEvent> {
        let mut stream = ScriptedStream::new(vec![30.0]);
        simulate_with_log(&[Segment::new(100.0, 10.0, 20.0).unwrap()], 5.0, &mut stream)
            .unwrap()
            .events
    }

    #[test]
    fn replay_preserves_order_names_and_times() {
        let events = logged();
        let mut sink = RingBufferSink::new(64);
        assert_eq!(replay_log(&events, &mut sink), events.len());
        let traced: Vec<_> = sink.events().collect();
        assert_eq!(traced.len(), events.len());
        let names: Vec<&str> = traced.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "attempt_started",
                "failure",
                "downtime_completed",
                "recovery_completed",
                "attempt_started",
                "segment_completed",
            ]
        );
        for (trace, event) in traced.iter().zip(&events) {
            assert_eq!(trace.time(), event.time());
            assert_eq!(trace.domain(), TimeDomain::Sim);
        }
    }

    #[test]
    fn replay_skips_disabled_sinks() {
        assert_eq!(replay_log(&logged(), &mut NoopSink), 0);
    }

    #[test]
    fn replayed_digest_is_reproducible() {
        let mut a = DigestSink::new();
        let mut b = DigestSink::new();
        replay_log(&logged(), &mut a);
        replay_log(&logged(), &mut b);
        assert_eq!(a.hex(), b.hex());
        assert!(a.sim_events() > 0);
    }
}

//! Instrumented simulation: the same execution semantics as
//! [`crate::engine::simulate`], but producing a detailed event log.
//!
//! The event log is what an operator (or a debugging session) would want to
//! look at: when each segment started, when failures struck, how long each
//! downtime/recovery took, when checkpoints completed. The log-based runner is
//! cross-checked against the plain engine in the tests — both must produce the
//! same makespan and failure count for the same stream.

use crate::error::SimulationError;
use crate::segment::Segment;
use crate::stream::FailureStream;

/// One event in the simulated execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionEvent {
    /// A segment attempt started (work + checkpoint).
    AttemptStarted {
        /// Index of the segment in the schedule.
        segment: usize,
        /// Simulated time at which the attempt started.
        time: f64,
    },
    /// A failure interrupted the current attempt or recovery.
    Failure {
        /// Index of the segment being executed or recovered.
        segment: usize,
        /// Simulated time of the failure.
        time: f64,
        /// Time wasted since the attempt (or recovery) started.
        wasted: f64,
    },
    /// A downtime completed.
    DowntimeCompleted {
        /// Index of the affected segment.
        segment: usize,
        /// Simulated time at which the platform became available again.
        time: f64,
    },
    /// A recovery completed successfully.
    RecoveryCompleted {
        /// Index of the affected segment.
        segment: usize,
        /// Simulated time at which the recovery finished.
        time: f64,
    },
    /// A segment completed, including its checkpoint.
    SegmentCompleted {
        /// Index of the completed segment.
        segment: usize,
        /// Simulated time at which the segment (and its checkpoint) finished.
        time: f64,
    },
    /// An online policy decided whether to checkpoint after a task
    /// (policy-driven simulations only, see [`crate::policy`]; the fixed
    /// schedule runners never emit it). For these events `segment` is the
    /// **task position** in the chain.
    PolicyDecision {
        /// Position of the just-completed task the decision concerns.
        segment: usize,
        /// Simulated time of the decision.
        time: f64,
        /// Whether the policy chose to checkpoint.
        checkpoint: bool,
    },
}

impl ExecutionEvent {
    /// The simulated time of the event.
    pub fn time(&self) -> f64 {
        match *self {
            ExecutionEvent::AttemptStarted { time, .. }
            | ExecutionEvent::Failure { time, .. }
            | ExecutionEvent::DowntimeCompleted { time, .. }
            | ExecutionEvent::RecoveryCompleted { time, .. }
            | ExecutionEvent::SegmentCompleted { time, .. }
            | ExecutionEvent::PolicyDecision { time, .. } => time,
        }
    }
}

/// The outcome of an instrumented simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedExecution {
    /// Total wall-clock time of the execution.
    pub makespan: f64,
    /// Number of failures observed.
    pub failures: u64,
    /// The chronological event log.
    pub events: Vec<ExecutionEvent>,
}

impl LoggedExecution {
    /// The events concerning a given segment, in order.
    pub fn events_for_segment(&self, segment: usize) -> Vec<ExecutionEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| match *e {
                ExecutionEvent::AttemptStarted { segment: s, .. }
                | ExecutionEvent::Failure { segment: s, .. }
                | ExecutionEvent::DowntimeCompleted { segment: s, .. }
                | ExecutionEvent::RecoveryCompleted { segment: s, .. }
                | ExecutionEvent::SegmentCompleted { segment: s, .. }
                | ExecutionEvent::PolicyDecision { segment: s, .. } => s == segment,
            })
            .collect()
    }

    /// The number of attempts made for a given segment (1 = no failure during
    /// that segment's work or checkpoint).
    pub fn attempts_for_segment(&self, segment: usize) -> usize {
        self.events_for_segment(segment)
            .iter()
            .filter(|e| matches!(e, ExecutionEvent::AttemptStarted { .. }))
            .count()
    }
}

/// Simulates `segments` with full event logging.
///
/// # Errors
///
/// Same contract as [`crate::engine::simulate`].
pub fn simulate_with_log<S: FailureStream + ?Sized>(
    segments: &[Segment],
    downtime: f64,
    stream: &mut S,
) -> Result<LoggedExecution, SimulationError> {
    if segments.is_empty() {
        return Err(SimulationError::EmptySchedule);
    }
    if !downtime.is_finite() || downtime < 0.0 {
        return Err(SimulationError::NegativeParameter { name: "downtime", value: downtime });
    }

    let mut clock = 0.0f64;
    let mut failures = 0u64;
    let mut events = Vec::new();

    for (index, segment) in segments.iter().enumerate() {
        let attempt = segment.attempt_duration();
        loop {
            events.push(ExecutionEvent::AttemptStarted { segment: index, time: clock });
            match stream.next_failure_after(clock) {
                Some(failure_time) if failure_time < clock + attempt => {
                    failures += 1;
                    events.push(ExecutionEvent::Failure {
                        segment: index,
                        time: failure_time,
                        wasted: failure_time - clock,
                    });
                    clock = failure_time + downtime;
                    events.push(ExecutionEvent::DowntimeCompleted { segment: index, time: clock });
                    // Recovery, possibly interrupted.
                    if segment.recovery() > 0.0 {
                        loop {
                            match stream.next_failure_after(clock) {
                                Some(f) if f < clock + segment.recovery() => {
                                    failures += 1;
                                    events.push(ExecutionEvent::Failure {
                                        segment: index,
                                        time: f,
                                        wasted: f - clock,
                                    });
                                    clock = f + downtime;
                                    events.push(ExecutionEvent::DowntimeCompleted {
                                        segment: index,
                                        time: clock,
                                    });
                                }
                                _ => {
                                    clock += segment.recovery();
                                    events.push(ExecutionEvent::RecoveryCompleted {
                                        segment: index,
                                        time: clock,
                                    });
                                    break;
                                }
                            }
                        }
                    }
                }
                _ => {
                    clock += attempt;
                    events.push(ExecutionEvent::SegmentCompleted { segment: index, time: clock });
                    break;
                }
            }
        }
    }

    Ok(LoggedExecution { makespan: clock, failures, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::stream::{ExponentialStream, NoFailureStream, ScriptedStream};

    fn seg(work: f64, ckpt: f64, rec: f64) -> Segment {
        Segment::new(work, ckpt, rec).unwrap()
    }

    #[test]
    fn validation_matches_engine() {
        let mut stream = NoFailureStream;
        assert!(simulate_with_log(&[], 0.0, &mut stream).is_err());
        assert!(simulate_with_log(&[seg(1.0, 0.0, 0.0)], -1.0, &mut stream).is_err());
    }

    #[test]
    fn failure_free_log_has_one_attempt_per_segment() {
        let segments = vec![seg(100.0, 10.0, 5.0), seg(200.0, 20.0, 10.0)];
        let mut stream = NoFailureStream;
        let log = simulate_with_log(&segments, 30.0, &mut stream).unwrap();
        assert_eq!(log.makespan, 330.0);
        assert_eq!(log.failures, 0);
        assert_eq!(log.attempts_for_segment(0), 1);
        assert_eq!(log.attempts_for_segment(1), 1);
        assert_eq!(log.events.len(), 4); // 2 starts + 2 completions
                                         // Events are chronologically ordered.
        assert!(log.events.windows(2).all(|w| w[0].time() <= w[1].time()));
    }

    #[test]
    fn scripted_failure_produces_the_expected_event_sequence() {
        // Same scenario as the engine test: failure at t=30, downtime 5,
        // recovery 20, then a clean re-attempt.
        let mut stream = ScriptedStream::new(vec![30.0]);
        let log = simulate_with_log(&[seg(100.0, 10.0, 20.0)], 5.0, &mut stream).unwrap();
        assert_eq!(log.failures, 1);
        assert!((log.makespan - 165.0).abs() < 1e-12);
        assert_eq!(log.attempts_for_segment(0), 2);
        let kinds: Vec<&'static str> = log
            .events
            .iter()
            .map(|e| match e {
                ExecutionEvent::AttemptStarted { .. } => "start",
                ExecutionEvent::Failure { .. } => "failure",
                ExecutionEvent::DowntimeCompleted { .. } => "downtime",
                ExecutionEvent::RecoveryCompleted { .. } => "recovery",
                ExecutionEvent::SegmentCompleted { .. } => "done",
                ExecutionEvent::PolicyDecision { .. } => "decision",
            })
            .collect();
        assert_eq!(kinds, vec!["start", "failure", "downtime", "recovery", "start", "done"]);
    }

    #[test]
    fn logged_and_plain_simulation_agree_on_random_streams() {
        let segments = vec![seg(500.0, 60.0, 30.0), seg(900.0, 45.0, 60.0), seg(200.0, 20.0, 40.0)];
        for seed in 0..20u64 {
            let mut s1 = ExponentialStream::new(1.0 / 800.0, seed);
            let mut s2 = ExponentialStream::new(1.0 / 800.0, seed);
            let plain = simulate(&segments, 25.0, &mut s1).unwrap();
            let logged = simulate_with_log(&segments, 25.0, &mut s2).unwrap();
            assert!(
                (plain.makespan - logged.makespan).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                plain.makespan,
                logged.makespan
            );
            assert_eq!(plain.failures, logged.failures, "seed {seed}");
        }
    }

    #[test]
    fn failure_count_matches_failure_events() {
        let mut stream = ScriptedStream::new(vec![20.0, 60.0, 400.0]);
        let log = simulate_with_log(&[seg(100.0, 0.0, 50.0)], 10.0, &mut stream).unwrap();
        let failure_events =
            log.events.iter().filter(|e| matches!(e, ExecutionEvent::Failure { .. })).count()
                as u64;
        assert_eq!(log.failures, failure_events);
    }
}

//! Monte-Carlo driver: repeat an execution many times and summarise.
//!
//! Trials are embarrassingly parallel and run across threads
//! ([`SimulationScenario::with_threads`]); every trial derives its own RNG
//! stream from the master seed and the trial index, and the aggregation pass
//! walks trials in index order, so outcomes are **bit-identical for any
//! thread count** at the same seed.

use ckpt_expectation::numeric::SampleStats;
use ckpt_failure::{FailureDistribution, Pcg64, PlatformFailureProcess, RandomSource};

use crate::engine::{simulate, ExecutionRecord, TimeBreakdown};
use crate::error::SimulationError;
use crate::policy::{
    simulate_dag_policy, simulate_policy, ChainTask, DagPolicy, DagPolicyExecutionRecord, Policy,
    PolicyExecutionRecord,
};
use crate::segment::Segment;
use crate::stream::{ExponentialStream, FailureStream, PlatformStream};

/// How failures are generated across Monte-Carlo trials.
#[derive(Debug, Clone)]
enum FailureModel {
    /// Platform-level Exponential process with the given rate.
    Exponential { lambda: f64 },
    /// Superposition of `p` per-processor processes drawn from a prototype law.
    Platform { processors: usize, law: std::sync::Arc<dyn FailureDistribution + Send + Sync> },
}

/// A reusable Monte-Carlo simulation configuration.
///
/// Build one with [`SimulationScenario::exponential`] or
/// [`SimulationScenario::platform`], adjust it with the `with_*` methods and
/// run it against any segment sequence with [`SimulationScenario::run`].
#[derive(Debug, Clone)]
pub struct SimulationScenario {
    model: FailureModel,
    downtime: f64,
    trials: usize,
    seed: u64,
    /// Worker threads; `0` means one per available core.
    threads: usize,
}

/// Aggregated outcome of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloOutcome {
    /// Statistics of the makespan across trials.
    pub makespan: SampleStats,
    /// Statistics of the failure count across trials.
    pub failures: SampleStats,
    /// Mean time breakdown across trials.
    pub mean_breakdown: TimeBreakdown,
    /// The raw makespan observations (one per trial), in trial order.
    pub samples: Vec<f64>,
}

impl MonteCarloOutcome {
    /// The empirical probability that the makespan exceeds `threshold`.
    pub fn exceedance_probability(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&m| m > threshold).count() as f64 / self.samples.len() as f64
    }

    /// The empirical `q`-quantile of the makespan (`0 < q < 1`): the order
    /// statistic at rank `round((n − 1)·q)`, the same nearest-rank convention
    /// `ckpt_telemetry`'s `LogHistogram::quantile` uses — so a quantile read
    /// off raw samples and one read off a histogram of the same samples
    /// always pick the same rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)` or no samples were collected.
    pub fn makespan_quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile requires q in (0, 1)");
        assert!(!self.samples.is_empty(), "no samples collected");
        // `select_nth_unstable_by` partitions in O(n) instead of the
        // O(n log n) full sort; `samples` stays in trial order, so the
        // selection works on a scratch copy.
        let mut scratch = self.samples.clone();
        let rank = (((scratch.len() - 1) as f64) * q).round() as usize;
        let (_, nth, _) = scratch
            .select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).expect("makespans are finite"));
        *nth
    }
}

impl SimulationScenario {
    /// Scenario with a platform-level Exponential failure process of rate
    /// `lambda` (the paper's model).
    pub fn exponential(lambda: f64) -> Self {
        SimulationScenario {
            model: FailureModel::Exponential { lambda },
            downtime: 0.0,
            trials: 1000,
            seed: 0x5EED,
            threads: 0,
        }
    }

    /// Scenario with `processors` processors each following `law`
    /// (the §6 general-distribution extension).
    pub fn platform<D>(processors: usize, law: D) -> Self
    where
        D: FailureDistribution + Send + Sync + 'static,
    {
        SimulationScenario {
            model: FailureModel::Platform { processors, law: std::sync::Arc::new(law) },
            downtime: 0.0,
            trials: 1000,
            seed: 0x5EED,
            threads: 0,
        }
    }

    /// Sets the downtime `D` (builder style).
    pub fn with_downtime(mut self, downtime: f64) -> Self {
        self.downtime = downtime;
        self
    }

    /// Sets the number of Monte-Carlo trials (builder style).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed (builder style). Each trial derives its own
    /// sub-stream, so two scenarios with equal seeds produce identical
    /// results.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads trials are spread across (builder
    /// style). `0` (the default) uses one worker per available core.
    ///
    /// The outcome is **bit-identical for every thread count**: each trial
    /// derives its own RNG stream from the master seed and its index, and the
    /// aggregation walks trials in index order regardless of which worker ran
    /// them.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The number of worker threads a run will actually use.
    fn effective_threads(&self) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(self.trials).max(1)
    }

    /// Runs one trial: derives the trial's RNG stream deterministically from
    /// the root generator and the trial index (`hash(seed, trial)`), builds
    /// the failure stream and simulates the segments once.
    fn run_trial(
        &self,
        trial: usize,
        segments: &[Segment],
        root: &Pcg64,
    ) -> Result<ExecutionRecord, SimulationError> {
        let mut trial_rng = root.derive(trial as u64);
        let trial_seed = trial_rng.next_u64();
        match &self.model {
            FailureModel::Exponential { lambda } => {
                let mut stream = ExponentialStream::new(*lambda, trial_seed);
                simulate(segments, self.downtime, &mut stream)
            }
            FailureModel::Platform { processors, law } => {
                let proto = SharedLaw(std::sync::Arc::clone(law));
                let process = PlatformFailureProcess::homogeneous(*processors, proto, trial_seed)
                    .expect("scenario constructors require at least one processor");
                let mut stream = PlatformStream::new(process);
                simulate(segments, self.downtime, &mut stream)
            }
        }
    }

    /// Runs the scenario on the given segment sequence.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, the scenario has zero trials, or the
    /// failure-model parameters are invalid; use [`SimulationScenario::try_run`]
    /// for a recoverable error.
    pub fn run(&self, segments: &[Segment]) -> MonteCarloOutcome {
        self.try_run(segments).expect("invalid simulation scenario")
    }

    /// Runs the scenario, returning configuration errors instead of panicking.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::EmptySchedule`] if `segments` is empty;
    /// * [`SimulationError::ZeroTrials`] if the scenario has zero trials;
    /// * [`SimulationError::NonPositiveParameter`] for an invalid failure rate.
    pub fn try_run(&self, segments: &[Segment]) -> Result<MonteCarloOutcome, SimulationError> {
        if segments.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        if let FailureModel::Exponential { lambda } = self.model {
            if !lambda.is_finite() || lambda <= 0.0 {
                return Err(SimulationError::NonPositiveParameter {
                    name: "lambda",
                    value: lambda,
                });
            }
        }

        let root = Pcg64::seed_from_u64(self.seed);
        let records = scatter_trials(self.trials, self.effective_threads(), |trial| {
            self.run_trial(trial, segments, &root)
        });

        // Aggregate strictly in trial order: the summation order (and hence
        // every floating-point result) is independent of the thread count.
        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();
        for slot in records {
            let record = slot?;
            makespans.push(record.makespan);
            failures.push(record.failures as f64);
            breakdown_sum.useful += record.breakdown.useful;
            breakdown_sum.lost += record.breakdown.lost;
            breakdown_sum.downtime += record.breakdown.downtime;
            breakdown_sum.recovery += record.breakdown.recovery;
        }

        let n = self.trials as f64;
        Ok(MonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }

    /// Runs the scenario with a caller-supplied stream factory — used to
    /// replay recorded traces or scripted failures across trials.
    ///
    /// The factory receives the trial index and must return a fresh stream.
    /// Runs sequentially regardless of [`SimulationScenario::with_threads`]
    /// (the `FnMut` factory may carry state across trials).
    ///
    /// # Errors
    ///
    /// Same as [`SimulationScenario::try_run`].
    pub fn run_with_streams<F, S>(
        &self,
        segments: &[Segment],
        mut factory: F,
    ) -> Result<MonteCarloOutcome, SimulationError>
    where
        F: FnMut(usize) -> S,
        S: FailureStream,
    {
        if segments.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();
        for trial in 0..self.trials {
            let mut stream = factory(trial);
            let record = simulate(segments, self.downtime, &mut stream)?;
            makespans.push(record.makespan);
            failures.push(record.failures as f64);
            breakdown_sum.useful += record.breakdown.useful;
            breakdown_sum.lost += record.breakdown.lost;
            breakdown_sum.downtime += record.breakdown.downtime;
            breakdown_sum.recovery += record.breakdown.recovery;
        }
        let n = self.trials as f64;
        Ok(MonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }
}

/// Aggregated outcome of a **policy-driven** Monte-Carlo run
/// (see [`SimulationScenario::run_policy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyMonteCarloOutcome {
    /// Statistics of the makespan across trials.
    pub makespan: SampleStats,
    /// Statistics of the failure count across trials.
    pub failures: SampleStats,
    /// Statistics of the number of checkpoints the policy took per trial
    /// (the mandatory final checkpoint included).
    pub checkpoints: SampleStats,
    /// Mean time breakdown across trials.
    pub mean_breakdown: TimeBreakdown,
    /// The raw makespan observations (one per trial), in trial order.
    pub samples: Vec<f64>,
}

impl SimulationScenario {
    /// Runs a **policy-driven** Monte-Carlo experiment: each trial builds a
    /// fresh failure stream from the scenario's model (exactly as
    /// [`SimulationScenario::try_run`] does) and a fresh policy from
    /// `make_policy(trial)`, then executes `tasks` under
    /// [`crate::policy::simulate_policy`].
    ///
    /// Trials are spread across the scenario's worker threads with the same
    /// deterministic contiguous-chunk pattern as the fixed-schedule runner:
    /// the outcome is **bit-identical for every thread count** at the same
    /// seed.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::EmptySchedule`] if `tasks` is empty;
    /// * [`SimulationError::ZeroTrials`] if the scenario has zero trials;
    /// * [`SimulationError::NonPositiveParameter`] for an invalid failure
    ///   rate;
    /// * propagated engine validation errors (negative downtime or initial
    ///   recovery).
    pub fn run_policy<P, G>(
        &self,
        tasks: &[ChainTask],
        initial_recovery: f64,
        make_policy: G,
    ) -> Result<PolicyMonteCarloOutcome, SimulationError>
    where
        P: Policy,
        G: Fn(usize) -> P + Sync,
    {
        if let FailureModel::Exponential { lambda } = self.model {
            if !lambda.is_finite() || lambda <= 0.0 {
                return Err(SimulationError::NonPositiveParameter {
                    name: "lambda",
                    value: lambda,
                });
            }
        }
        let root = Pcg64::seed_from_u64(self.seed);
        self.policy_trials(tasks, |trial| {
            let mut trial_rng = root.derive(trial as u64);
            let trial_seed = trial_rng.next_u64();
            let mut policy = make_policy(trial);
            match &self.model {
                FailureModel::Exponential { lambda } => {
                    let mut stream = ExponentialStream::new(*lambda, trial_seed);
                    simulate_policy(
                        tasks,
                        initial_recovery,
                        self.downtime,
                        &mut policy,
                        &mut stream,
                    )
                }
                FailureModel::Platform { processors, law } => {
                    let proto = SharedLaw(std::sync::Arc::clone(law));
                    let process =
                        PlatformFailureProcess::homogeneous(*processors, proto, trial_seed)
                            .expect("scenario constructors require at least one processor");
                    let mut stream = PlatformStream::new(process);
                    simulate_policy(
                        tasks,
                        initial_recovery,
                        self.downtime,
                        &mut policy,
                        &mut stream,
                    )
                }
            }
        })
    }

    /// [`SimulationScenario::run_policy`] with a caller-supplied stream
    /// factory (trace replay, scripted failures): `make_stream(trial, seed)`
    /// receives the trial index and the trial's deterministically derived
    /// seed and must return a fresh stream. The scenario's own failure model
    /// is ignored; trials still run across the scenario's worker threads
    /// with bit-identical outcomes at any thread count (both factories must
    /// therefore be pure functions of their arguments).
    ///
    /// # Errors
    ///
    /// Same as [`SimulationScenario::run_policy`], minus the failure-rate
    /// check.
    pub fn run_policy_with_streams<P, G, S, F>(
        &self,
        tasks: &[ChainTask],
        initial_recovery: f64,
        make_policy: G,
        make_stream: F,
    ) -> Result<PolicyMonteCarloOutcome, SimulationError>
    where
        P: Policy,
        G: Fn(usize) -> P + Sync,
        S: FailureStream,
        F: Fn(usize, u64) -> S + Sync,
    {
        let root = Pcg64::seed_from_u64(self.seed);
        self.policy_trials(tasks, |trial| {
            let mut trial_rng = root.derive(trial as u64);
            let trial_seed = trial_rng.next_u64();
            let mut policy = make_policy(trial);
            let mut stream = make_stream(trial, trial_seed);
            simulate_policy(tasks, initial_recovery, self.downtime, &mut policy, &mut stream)
        })
    }

    /// The shared policy-trial driver: runs `run_trial` for every trial
    /// index (chunked across workers exactly like
    /// [`SimulationScenario::try_run`]) and aggregates strictly in trial
    /// order.
    fn policy_trials<R>(
        &self,
        tasks: &[ChainTask],
        run_trial: R,
    ) -> Result<PolicyMonteCarloOutcome, SimulationError>
    where
        R: Fn(usize) -> Result<PolicyExecutionRecord, SimulationError> + Sync,
    {
        if tasks.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        let records = scatter_trials(self.trials, self.effective_threads(), run_trial);

        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut checkpoints = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();
        for slot in records {
            let outcome = slot?;
            makespans.push(outcome.record.makespan);
            failures.push(outcome.record.failures as f64);
            checkpoints.push(outcome.checkpoints as f64);
            breakdown_sum.useful += outcome.record.breakdown.useful;
            breakdown_sum.lost += outcome.record.breakdown.lost;
            breakdown_sum.downtime += outcome.record.breakdown.downtime;
            breakdown_sum.recovery += outcome.record.breakdown.recovery;
        }
        let n = self.trials as f64;
        Ok(PolicyMonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            checkpoints: SampleStats::from_values(&checkpoints),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }
}

/// Aggregated outcome of a **policy-driven DAG** Monte-Carlo run
/// (see [`SimulationScenario::run_dag_policy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DagPolicyMonteCarloOutcome {
    /// Statistics of the makespan across trials.
    pub makespan: SampleStats,
    /// Statistics of the failure count across trials.
    pub failures: SampleStats,
    /// Statistics of the number of checkpoints taken per trial.
    pub checkpoints: SampleStats,
    /// Statistics of the number of suffix reorders per trial.
    pub reorders: SampleStats,
    /// Mean time breakdown across trials.
    pub mean_breakdown: TimeBreakdown,
    /// The raw makespan observations (one per trial), in trial order.
    pub samples: Vec<f64>,
}

impl SimulationScenario {
    /// The **DAG** twin of [`SimulationScenario::run_policy`]: each trial
    /// builds a fresh failure stream from the scenario's model and a fresh
    /// [`DagPolicy`] from `make_policy(trial)`, then executes `tasks` in
    /// `order` under [`crate::policy::simulate_dag_policy`].
    ///
    /// Trials are spread across the scenario's worker threads with the same
    /// deterministic contiguous-chunk pattern as every other runner: the
    /// outcome is **bit-identical for every thread count** at the same seed.
    ///
    /// # Errors
    ///
    /// * the [`simulate_dag_policy`] validation errors (empty task set,
    ///   invalid order or suffix reorder, negative downtime/recovery);
    /// * [`SimulationError::ZeroTrials`] if the scenario has zero trials;
    /// * [`SimulationError::NonPositiveParameter`] for an invalid failure
    ///   rate.
    pub fn run_dag_policy<P, G>(
        &self,
        tasks: &[ChainTask],
        order: &[usize],
        initial_recovery: f64,
        make_policy: G,
    ) -> Result<DagPolicyMonteCarloOutcome, SimulationError>
    where
        P: DagPolicy,
        G: Fn(usize) -> P + Sync,
    {
        if let FailureModel::Exponential { lambda } = self.model {
            if !lambda.is_finite() || lambda <= 0.0 {
                return Err(SimulationError::NonPositiveParameter {
                    name: "lambda",
                    value: lambda,
                });
            }
        }
        let root = Pcg64::seed_from_u64(self.seed);
        self.dag_policy_trials(tasks, |trial| {
            let mut trial_rng = root.derive(trial as u64);
            let trial_seed = trial_rng.next_u64();
            let mut policy = make_policy(trial);
            match &self.model {
                FailureModel::Exponential { lambda } => {
                    let mut stream = ExponentialStream::new(*lambda, trial_seed);
                    simulate_dag_policy(
                        tasks,
                        order,
                        initial_recovery,
                        self.downtime,
                        &mut policy,
                        &mut stream,
                    )
                }
                FailureModel::Platform { processors, law } => {
                    let proto = SharedLaw(std::sync::Arc::clone(law));
                    let process =
                        PlatformFailureProcess::homogeneous(*processors, proto, trial_seed)
                            .expect("scenario constructors require at least one processor");
                    let mut stream = PlatformStream::new(process);
                    simulate_dag_policy(
                        tasks,
                        order,
                        initial_recovery,
                        self.downtime,
                        &mut policy,
                        &mut stream,
                    )
                }
            }
        })
    }

    /// [`SimulationScenario::run_dag_policy`] with a caller-supplied stream
    /// factory: `make_stream(trial, seed)` receives the trial index and the
    /// trial's deterministically derived seed. The scenario's own failure
    /// model is ignored; both factories must be pure functions of their
    /// arguments for the thread-count invariance to hold.
    ///
    /// # Errors
    ///
    /// Same as [`SimulationScenario::run_dag_policy`], minus the
    /// failure-rate check.
    pub fn run_dag_policy_with_streams<P, G, S, F>(
        &self,
        tasks: &[ChainTask],
        order: &[usize],
        initial_recovery: f64,
        make_policy: G,
        make_stream: F,
    ) -> Result<DagPolicyMonteCarloOutcome, SimulationError>
    where
        P: DagPolicy,
        G: Fn(usize) -> P + Sync,
        S: FailureStream,
        F: Fn(usize, u64) -> S + Sync,
    {
        let root = Pcg64::seed_from_u64(self.seed);
        self.dag_policy_trials(tasks, |trial| {
            let mut trial_rng = root.derive(trial as u64);
            let trial_seed = trial_rng.next_u64();
            let mut policy = make_policy(trial);
            let mut stream = make_stream(trial, trial_seed);
            simulate_dag_policy(
                tasks,
                order,
                initial_recovery,
                self.downtime,
                &mut policy,
                &mut stream,
            )
        })
    }

    /// The shared DAG-policy trial driver: chunked across workers exactly
    /// like [`SimulationScenario::try_run`], aggregated strictly in trial
    /// order.
    fn dag_policy_trials<R>(
        &self,
        tasks: &[ChainTask],
        run_trial: R,
    ) -> Result<DagPolicyMonteCarloOutcome, SimulationError>
    where
        R: Fn(usize) -> Result<DagPolicyExecutionRecord, SimulationError> + Sync,
    {
        if tasks.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        let records = scatter_trials(self.trials, self.effective_threads(), run_trial);

        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut checkpoints = Vec::with_capacity(self.trials);
        let mut reorders = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();
        for slot in records {
            let outcome = slot?;
            makespans.push(outcome.record.makespan);
            failures.push(outcome.record.failures as f64);
            checkpoints.push(outcome.checkpoints as f64);
            reorders.push(outcome.reorders as f64);
            breakdown_sum.useful += outcome.record.breakdown.useful;
            breakdown_sum.lost += outcome.record.breakdown.lost;
            breakdown_sum.downtime += outcome.record.breakdown.downtime;
            breakdown_sum.recovery += outcome.record.breakdown.recovery;
        }
        let n = self.trials as f64;
        Ok(DagPolicyMonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            checkpoints: SampleStats::from_values(&checkpoints),
            reorders: SampleStats::from_values(&reorders),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }
}

/// The determinism-critical trial scatter shared by every Monte-Carlo
/// runner: executes `run_trial` for trial indices `0..trials`, spread
/// across `workers` threads in **contiguous chunks** (each worker writes
/// only its own slice, so trial `i`'s record always lands in slot `i`
/// whatever the thread count), and returns the records strictly in trial
/// order — the invariant the bit-identical-at-any-thread-count guarantee
/// rests on, kept in exactly one place.
///
/// `run_trial` must be a pure function of the trial index (derive per-trial
/// RNG streams from a shared root and the index); downstream drivers (the
/// `ckpt-cluster` Monte-Carlo runner) reuse this function so every runner in
/// the workspace shares the one audited implementation.
pub fn scatter_trials<T, E, R>(trials: usize, workers: usize, run_trial: R) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    R: Fn(usize) -> Result<T, E> + Sync,
{
    scatter_trials_with(trials, workers, || (), |trial, ()| run_trial(trial)).0
}

/// [`scatter_trials`] with a per-worker scratch state, returned **in chunk
/// order** alongside the trial records.
///
/// Each worker owns one `S` built by `init` and threads it through every
/// trial of its contiguous chunk; the states come back ordered by chunk
/// index (worker 0's chunk first), so any order-sensitive reduction over
/// them — merging per-worker telemetry shards, concatenating logs — is a
/// pure function of `(trials, workers)` and never of thread scheduling.
/// With `workers <= 1` exactly one state is returned.
pub fn scatter_trials_with<T, E, S, G, R>(
    trials: usize,
    workers: usize,
    init: G,
    run_trial: R,
) -> (Vec<Result<T, E>>, Vec<S>)
where
    T: Send,
    E: Send,
    S: Send,
    G: Fn() -> S + Sync,
    R: Fn(usize, &mut S) -> Result<T, E> + Sync,
{
    let mut records: Vec<Option<Result<T, E>>> = (0..trials).map(|_| None).collect();
    let states = if workers <= 1 {
        let mut state = init();
        for (trial, slot) in records.iter_mut().enumerate() {
            *slot = Some(run_trial(trial, &mut state));
        }
        vec![state]
    } else {
        let chunk = trials.div_ceil(workers);
        let chunk_count = trials.div_ceil(chunk.max(1));
        let mut slots: Vec<Option<S>> = (0..chunk_count).map(|_| None).collect();
        let init = &init;
        let run_trial = &run_trial;
        std::thread::scope(|scope| {
            for ((index, slice), state_slot) in
                records.chunks_mut(chunk).enumerate().zip(slots.iter_mut())
            {
                scope.spawn(move || {
                    let mut state = init();
                    let base = index * chunk;
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(run_trial(base + offset, &mut state));
                    }
                    *state_slot = Some(state);
                });
            }
        });
        slots.into_iter().map(|slot| slot.expect("every worker chunk ran")).collect()
    };
    let records =
        records.into_iter().map(|slot| slot.expect("every trial slot is filled")).collect();
    (records, states)
}

/// A cloneable, shareable view over a prototype failure law.
///
/// [`PlatformFailureProcess::homogeneous`] needs an owned, cloneable law to
/// hand one copy to every processor; scenarios store the prototype behind an
/// `Arc`, and this adaptor forwards every trait method to it.
#[derive(Debug, Clone)]
struct SharedLaw(std::sync::Arc<dyn FailureDistribution + Send + Sync>);

impl FailureDistribution for SharedLaw {
    fn kind(&self) -> ckpt_failure::DistributionKind {
        self.0.kind()
    }
    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        self.0.sample(rng)
    }
    fn pdf(&self, x: f64) -> f64 {
        self.0.pdf(x)
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn survival(&self, x: f64) -> f64 {
        self.0.survival(x)
    }
    fn hazard(&self, x: f64) -> f64 {
        self.0.hazard(x)
    }
    fn mean(&self) -> f64 {
        self.0.mean()
    }
    fn quantile(&self, p: f64) -> f64 {
        self.0.quantile(p)
    }
    fn conditional_survival(&self, elapsed: f64, x: f64) -> f64 {
        self.0.conditional_survival(elapsed, x)
    }
    fn sample_remaining(&self, elapsed: f64, rng: &mut dyn RandomSource) -> f64 {
        self.0.sample_remaining(elapsed, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ScriptedStream;
    use ckpt_expectation::exact::{expected_time, ExecutionParams};
    use ckpt_failure::{Exponential, Weibull};

    fn seg(work: f64, ckpt: f64, rec: f64) -> Segment {
        Segment::new(work, ckpt, rec).unwrap()
    }

    #[test]
    fn scenario_validation() {
        let scenario = SimulationScenario::exponential(0.001);
        assert!(matches!(scenario.try_run(&[]), Err(SimulationError::EmptySchedule)));
        let zero = SimulationScenario::exponential(0.001).with_trials(0);
        assert!(matches!(zero.try_run(&[seg(1.0, 0.0, 0.0)]), Err(SimulationError::ZeroTrials)));
        let bad = SimulationScenario::exponential(0.0);
        assert!(bad.try_run(&[seg(1.0, 0.0, 0.0)]).is_err());
    }

    #[test]
    fn outcomes_are_bit_identical_across_thread_counts() {
        // The tentpole determinism guarantee: same seed, any worker count,
        // byte-for-byte identical outcome (samples, stats and breakdown).
        let segments =
            vec![seg(1_500.0, 80.0, 40.0), seg(700.0, 20.0, 60.0), seg(2_400.0, 120.0, 30.0)];
        let scenario = || {
            SimulationScenario::exponential(1.0 / 2_000.0)
                .with_downtime(25.0)
                .with_trials(4_001)
                .with_seed(0xDEADBEEF)
        };
        let single = scenario().with_threads(1).run(&segments);
        for threads in [2usize, 3, 8, 64] {
            let multi = scenario().with_threads(threads).run(&segments);
            assert_eq!(single, multi, "outcome differs at {threads} threads");
        }
        let auto = scenario().run(&segments);
        assert_eq!(single, auto, "outcome differs with automatic thread count");
    }

    #[test]
    fn platform_outcomes_are_bit_identical_across_thread_counts() {
        let segments = vec![seg(3_000.0, 150.0, 90.0)];
        let scenario = || {
            SimulationScenario::platform(8, Weibull::with_mean(0.7, 50_000.0).unwrap())
                .with_downtime(30.0)
                .with_trials(801)
                .with_seed(99)
        };
        let single = scenario().with_threads(1).run(&segments);
        let multi = scenario().with_threads(7).run(&segments);
        assert_eq!(single, multi);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let outcome = SimulationScenario::exponential(1e-3)
            .with_trials(3)
            .with_threads(16)
            .run(&[seg(10.0, 1.0, 0.0)]);
        assert_eq!(outcome.samples.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let segments = vec![seg(1000.0, 50.0, 30.0)];
        let a = SimulationScenario::exponential(1e-3).with_seed(5).with_trials(200).run(&segments);
        let b = SimulationScenario::exponential(1e-3).with_seed(5).with_trials(200).run(&segments);
        let c = SimulationScenario::exponential(1e-3).with_seed(6).with_trials(200).run(&segments);
        assert_eq!(a.samples, b.samples);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn monte_carlo_mean_matches_proposition_1() {
        // The headline validation (experiment E1 in miniature): the sample
        // mean of the simulated makespan of a single segment must match the
        // closed form of Proposition 1.
        let lambda = 1.0 / 5_000.0;
        let (w, c, d, r) = (3_600.0, 120.0, 60.0, 90.0);
        let scenario = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(20_000)
            .with_seed(2024);
        let outcome = scenario.run(&[seg(w, c, r)]);
        let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
        let rel = outcome.makespan.relative_error(exact);
        assert!(rel < 0.02, "relative error {rel}, mean {}, exact {exact}", outcome.makespan.mean);
    }

    #[test]
    fn multi_segment_expectation_is_sum_of_segment_expectations() {
        let lambda = 1.0 / 2_000.0;
        let d = 30.0;
        let segments = vec![seg(500.0, 60.0, 0.0), seg(800.0, 60.0, 45.0), seg(300.0, 30.0, 45.0)];
        let scenario = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(20_000)
            .with_seed(99);
        let outcome = scenario.run(&segments);
        let exact: f64 = segments
            .iter()
            .map(|s| {
                expected_time(
                    &ExecutionParams::new(s.work(), s.checkpoint(), d, s.recovery(), lambda)
                        .unwrap(),
                )
            })
            .sum();
        let rel = outcome.makespan.relative_error(exact);
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn breakdown_mean_partitions_mean_makespan() {
        let scenario =
            SimulationScenario::exponential(1e-3).with_downtime(20.0).with_trials(500).with_seed(3);
        let outcome = scenario.run(&[seg(1000.0, 100.0, 50.0)]);
        assert!((outcome.mean_breakdown.total() - outcome.makespan.mean).abs() < 1e-6);
    }

    #[test]
    fn exceedance_and_quantiles() {
        let scenario = SimulationScenario::exponential(1e-4).with_trials(1000).with_seed(1);
        let outcome = scenario.run(&[seg(100.0, 10.0, 5.0)]);
        assert_eq!(outcome.exceedance_probability(0.0), 1.0);
        assert_eq!(outcome.exceedance_probability(f64::INFINITY), 0.0);
        let q50 = outcome.makespan_quantile(0.5);
        let q95 = outcome.makespan_quantile(0.95);
        assert!(q95 >= q50);
        assert!(q50 >= 110.0 - 1e-9);
    }

    #[test]
    fn quantile_rank_matches_telemetry_convention() {
        // The workspace-wide convention is the telemetry histogram's
        // nearest-rank rule `round((n − 1)·q)` — not `floor(n·q)`, which
        // disagrees at the upper tail (n = 4, q = 0.75 → index 3 instead
        // of 2).
        let scenario = SimulationScenario::exponential(1e-4).with_trials(4).with_seed(1);
        let outcome = scenario.run(&[seg(100.0, 10.0, 5.0)]);
        let mut sorted = outcome.samples.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(outcome.makespan_quantile(0.25), sorted[1]); // round(0.75)
        assert_eq!(outcome.makespan_quantile(0.5), sorted[2]); // round(1.5)
        assert_eq!(outcome.makespan_quantile(0.75), sorted[2]); // round(2.25)
        assert_eq!(outcome.makespan_quantile(0.95), sorted[3]); // round(2.85)
    }

    #[test]
    fn platform_scenario_exponential_matches_aggregate_rate() {
        // p processors with per-processor rate λ_proc behave like a single
        // platform-level stream of rate p·λ_proc.
        let p = 8;
        let lambda_proc = 1.0 / 40_000.0;
        let lambda = lambda_proc * p as f64;
        let (w, c, d, r) = (2_000.0, 100.0, 30.0, 60.0);
        let platform = SimulationScenario::platform(p, Exponential::new(lambda_proc).unwrap())
            .with_downtime(d)
            .with_trials(15_000)
            .with_seed(7)
            .run(&[seg(w, c, r)]);
        let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
        let rel = platform.makespan.relative_error(exact);
        assert!(rel < 0.03, "relative error {rel}");
    }

    #[test]
    fn weibull_platform_runs_and_differs_from_exponential() {
        let mean = 20_000.0;
        let segments = vec![seg(5_000.0, 200.0, 100.0)];
        let weib = SimulationScenario::platform(4, Weibull::with_mean(0.7, mean).unwrap())
            .with_downtime(30.0)
            .with_trials(4_000)
            .with_seed(11)
            .run(&segments);
        let expo = SimulationScenario::platform(4, Exponential::from_mtbf(mean).unwrap())
            .with_downtime(30.0)
            .with_trials(4_000)
            .with_seed(11)
            .run(&segments);
        assert!(weib.makespan.mean > 0.0 && expo.makespan.mean > 0.0);
        // Same MTBF but different law: means should not coincide exactly.
        assert!((weib.makespan.mean - expo.makespan.mean).abs() > 1e-6);
    }

    #[test]
    fn run_with_streams_uses_the_factory() {
        let scenario = SimulationScenario::exponential(1.0).with_trials(3).with_downtime(0.0);
        // Scripted: no failures at all, regardless of the exponential config.
        let outcome = scenario
            .run_with_streams(&[seg(10.0, 1.0, 0.0)], |_trial| ScriptedStream::new(vec![]))
            .unwrap();
        assert_eq!(outcome.makespan.mean, 11.0);
        assert_eq!(outcome.failures.mean, 0.0);
    }

    #[test]
    fn trials_accessor() {
        assert_eq!(SimulationScenario::exponential(1.0).with_trials(17).trials(), 17);
    }

    /// A work-threshold policy with per-trial state, for the policy-runner
    /// determinism tests.
    struct EveryOther {
        toggle: bool,
    }
    impl crate::policy::Policy for EveryOther {
        fn decide(&mut self, _ctx: &crate::policy::DecisionContext<'_>) -> bool {
            self.toggle = !self.toggle;
            self.toggle
        }
    }

    fn chain_tasks() -> Vec<crate::policy::ChainTask> {
        [(1_500.0, 80.0, 40.0), (700.0, 20.0, 60.0), (2_400.0, 120.0, 30.0), (900.0, 50.0, 35.0)]
            .into_iter()
            .map(|(w, c, r)| crate::policy::ChainTask::new(w, c, r).unwrap())
            .collect()
    }

    #[test]
    fn policy_outcomes_are_bit_identical_across_thread_counts() {
        let tasks = chain_tasks();
        let scenario = || {
            SimulationScenario::exponential(1.0 / 2_000.0)
                .with_downtime(25.0)
                .with_trials(2_001)
                .with_seed(0xADA97)
        };
        let factory = |_trial: usize| EveryOther { toggle: false };
        let single = scenario().with_threads(1).run_policy(&tasks, 15.0, factory).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let multi = scenario().with_threads(threads).run_policy(&tasks, 15.0, factory).unwrap();
            assert_eq!(single, multi, "policy outcome differs at {threads} threads");
        }
        let auto = scenario().run_policy(&tasks, 15.0, factory).unwrap();
        assert_eq!(single, auto);
    }

    /// A DAG policy that checkpoints on alternating boundaries and reverses
    /// the suffix after the first observed failure — enough statefulness to
    /// catch any thread-order dependence in the driver.
    struct AlternateAndFlip {
        toggle: bool,
        flipped: bool,
    }
    impl crate::policy::DagPolicy for AlternateAndFlip {
        fn decide(
            &mut self,
            ctx: &crate::policy::DagDecisionContext<'_>,
        ) -> crate::policy::DagDecision {
            self.toggle = !self.toggle;
            let reorder = if !self.flipped && !ctx.failure_times.is_empty() {
                self.flipped = true;
                let mut suffix = ctx.suffix().to_vec();
                suffix.reverse();
                Some(suffix)
            } else {
                None
            };
            crate::policy::DagDecision { checkpoint: self.toggle, reorder_suffix: reorder }
        }
    }

    #[test]
    fn dag_policy_outcomes_are_bit_identical_across_thread_counts() {
        let tasks = chain_tasks();
        let order: Vec<usize> = (0..tasks.len()).collect();
        let scenario = || {
            SimulationScenario::exponential(1.0 / 2_000.0)
                .with_downtime(25.0)
                .with_trials(1_001)
                .with_seed(0xDA6)
        };
        let factory = |_trial: usize| AlternateAndFlip { toggle: false, flipped: false };
        let single =
            scenario().with_threads(1).run_dag_policy(&tasks, &order, 15.0, factory).unwrap();
        for threads in [2usize, 3, 8] {
            let multi = scenario()
                .with_threads(threads)
                .run_dag_policy(&tasks, &order, 15.0, factory)
                .unwrap();
            assert_eq!(single, multi, "DAG policy outcome differs at {threads} threads");
        }
        assert!(single.failures.mean > 0.0);
        assert!(single.reorders.mean > 0.0, "the flip policy must have reordered");
        assert!((single.mean_breakdown.total() - single.makespan.mean).abs() < 1e-6);
    }

    #[test]
    fn dag_policy_runner_with_streams_is_deterministic() {
        let tasks = chain_tasks();
        let order: Vec<usize> = (0..tasks.len()).collect();
        let scenario = || {
            SimulationScenario::exponential(1.0).with_downtime(10.0).with_trials(201).with_seed(5)
        };
        let factory = |_trial: usize| AlternateAndFlip { toggle: true, flipped: false };
        let streams = |trial: usize, _seed: u64| {
            ScriptedStream::new(vec![700.0 + 41.0 * (trial % 5) as f64, 9_000.0])
        };
        let single = scenario()
            .with_threads(1)
            .run_dag_policy_with_streams(&tasks, &order, 15.0, factory, streams)
            .unwrap();
        let multi = scenario()
            .with_threads(3)
            .run_dag_policy_with_streams(&tasks, &order, 15.0, factory, streams)
            .unwrap();
        assert_eq!(single, multi);
        assert!(single.failures.mean > 0.0);
    }

    #[test]
    fn policy_runner_validates_inputs() {
        let scenario = SimulationScenario::exponential(1e-3);
        let factory = |_trial: usize| EveryOther { toggle: false };
        assert!(matches!(
            scenario.run_policy(&[], 0.0, factory),
            Err(SimulationError::EmptySchedule)
        ));
        let zero = SimulationScenario::exponential(1e-3).with_trials(0);
        assert!(matches!(
            zero.run_policy(&chain_tasks(), 0.0, factory),
            Err(SimulationError::ZeroTrials)
        ));
        assert!(SimulationScenario::exponential(0.0)
            .run_policy(&chain_tasks(), 0.0, factory)
            .is_err());
    }

    #[test]
    fn policy_runner_with_streams_is_thread_deterministic() {
        // Per-trial scripted streams (a stand-in for trace replay): the
        // factory is a pure function of the trial index, so the outcome must
        // not depend on the thread count.
        let tasks = chain_tasks();
        let scenario = || {
            SimulationScenario::exponential(1.0).with_downtime(10.0).with_trials(301).with_seed(9)
        };
        let factory = |_trial: usize| EveryOther { toggle: false };
        let streams = |trial: usize, _seed: u64| {
            ScriptedStream::new(vec![500.0 + 37.0 * (trial % 7) as f64, 4_000.0])
        };
        let single = scenario()
            .with_threads(1)
            .run_policy_with_streams(&tasks, 15.0, factory, streams)
            .unwrap();
        for threads in [2usize, 5] {
            let multi = scenario()
                .with_threads(threads)
                .run_policy_with_streams(&tasks, 15.0, factory, streams)
                .unwrap();
            assert_eq!(single, multi, "differs at {threads} threads");
        }
        assert!(single.failures.mean > 0.0);
        assert!(single.checkpoints.mean >= 1.0);
    }

    #[test]
    fn policy_platform_scenario_runs() {
        let tasks = chain_tasks();
        let outcome = SimulationScenario::platform(4, Weibull::with_mean(0.7, 30_000.0).unwrap())
            .with_downtime(20.0)
            .with_trials(500)
            .with_seed(3)
            .run_policy(&tasks, 10.0, |_| EveryOther { toggle: true })
            .unwrap();
        assert!(outcome.makespan.mean >= 5_500.0);
        assert!((outcome.mean_breakdown.total() - outcome.makespan.mean).abs() < 1e-6);
    }
}

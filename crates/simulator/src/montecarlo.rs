//! Monte-Carlo driver: repeat an execution many times and summarise.

use ckpt_expectation::numeric::SampleStats;
use ckpt_failure::{FailureDistribution, Pcg64, PlatformFailureProcess, RandomSource};

use crate::engine::{simulate, TimeBreakdown};
use crate::error::SimulationError;
use crate::segment::Segment;
use crate::stream::{ExponentialStream, FailureStream, PlatformStream};

/// How failures are generated across Monte-Carlo trials.
#[derive(Debug, Clone)]
enum FailureModel {
    /// Platform-level Exponential process with the given rate.
    Exponential { lambda: f64 },
    /// Superposition of `p` per-processor processes drawn from a prototype law.
    Platform {
        processors: usize,
        law: std::sync::Arc<dyn FailureDistribution>,
    },
}

/// A reusable Monte-Carlo simulation configuration.
///
/// Build one with [`SimulationScenario::exponential`] or
/// [`SimulationScenario::platform`], adjust it with the `with_*` methods and
/// run it against any segment sequence with [`SimulationScenario::run`].
#[derive(Debug, Clone)]
pub struct SimulationScenario {
    model: FailureModel,
    downtime: f64,
    trials: usize,
    seed: u64,
}

/// Aggregated outcome of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloOutcome {
    /// Statistics of the makespan across trials.
    pub makespan: SampleStats,
    /// Statistics of the failure count across trials.
    pub failures: SampleStats,
    /// Mean time breakdown across trials.
    pub mean_breakdown: TimeBreakdown,
    /// The raw makespan observations (one per trial), in trial order.
    pub samples: Vec<f64>,
}

impl MonteCarloOutcome {
    /// The empirical probability that the makespan exceeds `threshold`.
    pub fn exceedance_probability(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&m| m > threshold).count() as f64 / self.samples.len() as f64
    }

    /// The empirical `q`-quantile of the makespan (`0 < q < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)` or no samples were collected.
    pub fn makespan_quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile requires q in (0, 1)");
        assert!(!self.samples.is_empty(), "no samples collected");
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("makespans are finite"));
        let idx = ((sorted.len() as f64) * q).floor() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

impl SimulationScenario {
    /// Scenario with a platform-level Exponential failure process of rate
    /// `lambda` (the paper's model).
    pub fn exponential(lambda: f64) -> Self {
        SimulationScenario {
            model: FailureModel::Exponential { lambda },
            downtime: 0.0,
            trials: 1000,
            seed: 0x5EED,
        }
    }

    /// Scenario with `processors` processors each following `law`
    /// (the §6 general-distribution extension).
    pub fn platform<D>(processors: usize, law: D) -> Self
    where
        D: FailureDistribution + 'static,
    {
        SimulationScenario {
            model: FailureModel::Platform { processors, law: std::sync::Arc::new(law) },
            downtime: 0.0,
            trials: 1000,
            seed: 0x5EED,
        }
    }

    /// Sets the downtime `D` (builder style).
    pub fn with_downtime(mut self, downtime: f64) -> Self {
        self.downtime = downtime;
        self
    }

    /// Sets the number of Monte-Carlo trials (builder style).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed (builder style). Each trial derives its own
    /// sub-stream, so two scenarios with equal seeds produce identical
    /// results.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Runs the scenario on the given segment sequence.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, the scenario has zero trials, or the
    /// failure-model parameters are invalid; use [`SimulationScenario::try_run`]
    /// for a recoverable error.
    pub fn run(&self, segments: &[Segment]) -> MonteCarloOutcome {
        self.try_run(segments).expect("invalid simulation scenario")
    }

    /// Runs the scenario, returning configuration errors instead of panicking.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::EmptySchedule`] if `segments` is empty;
    /// * [`SimulationError::ZeroTrials`] if the scenario has zero trials;
    /// * [`SimulationError::NonPositiveParameter`] for an invalid failure rate.
    pub fn try_run(&self, segments: &[Segment]) -> Result<MonteCarloOutcome, SimulationError> {
        if segments.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        if let FailureModel::Exponential { lambda } = self.model {
            if !lambda.is_finite() || lambda <= 0.0 {
                return Err(SimulationError::NonPositiveParameter { name: "lambda", value: lambda });
            }
        }

        let root = Pcg64::seed_from_u64(self.seed);
        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();

        for trial in 0..self.trials {
            let mut trial_rng = root.derive(trial as u64);
            let trial_seed = trial_rng.next_u64();
            let record = match &self.model {
                FailureModel::Exponential { lambda } => {
                    let mut stream = ExponentialStream::new(*lambda, trial_seed);
                    simulate(segments, self.downtime, &mut stream)?
                }
                FailureModel::Platform { processors, law } => {
                    let proto = SharedLaw(std::sync::Arc::clone(law));
                    let process = PlatformFailureProcess::homogeneous(*processors, proto, trial_seed)
                        .expect("scenario constructors require at least one processor");
                    let mut stream = PlatformStream::new(process);
                    simulate(segments, self.downtime, &mut stream)?
                }
            };
            makespans.push(record.makespan);
            failures.push(record.failures as f64);
            breakdown_sum.useful += record.breakdown.useful;
            breakdown_sum.lost += record.breakdown.lost;
            breakdown_sum.downtime += record.breakdown.downtime;
            breakdown_sum.recovery += record.breakdown.recovery;
        }

        let n = self.trials as f64;
        Ok(MonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }

    /// Runs the scenario with a caller-supplied stream factory — used to
    /// replay recorded traces or scripted failures across trials.
    ///
    /// The factory receives the trial index and must return a fresh stream.
    ///
    /// # Errors
    ///
    /// Same as [`SimulationScenario::try_run`].
    pub fn run_with_streams<F, S>(
        &self,
        segments: &[Segment],
        mut factory: F,
    ) -> Result<MonteCarloOutcome, SimulationError>
    where
        F: FnMut(usize) -> S,
        S: FailureStream,
    {
        if segments.is_empty() {
            return Err(SimulationError::EmptySchedule);
        }
        if self.trials == 0 {
            return Err(SimulationError::ZeroTrials);
        }
        let mut makespans = Vec::with_capacity(self.trials);
        let mut failures = Vec::with_capacity(self.trials);
        let mut breakdown_sum = TimeBreakdown::default();
        for trial in 0..self.trials {
            let mut stream = factory(trial);
            let record = simulate(segments, self.downtime, &mut stream)?;
            makespans.push(record.makespan);
            failures.push(record.failures as f64);
            breakdown_sum.useful += record.breakdown.useful;
            breakdown_sum.lost += record.breakdown.lost;
            breakdown_sum.downtime += record.breakdown.downtime;
            breakdown_sum.recovery += record.breakdown.recovery;
        }
        let n = self.trials as f64;
        Ok(MonteCarloOutcome {
            makespan: SampleStats::from_values(&makespans),
            failures: SampleStats::from_values(&failures),
            mean_breakdown: TimeBreakdown {
                useful: breakdown_sum.useful / n,
                lost: breakdown_sum.lost / n,
                downtime: breakdown_sum.downtime / n,
                recovery: breakdown_sum.recovery / n,
            },
            samples: makespans,
        })
    }
}

/// A cloneable, shareable view over a prototype failure law.
///
/// [`PlatformFailureProcess::homogeneous`] needs an owned, cloneable law to
/// hand one copy to every processor; scenarios store the prototype behind an
/// `Arc`, and this adaptor forwards every trait method to it.
#[derive(Debug, Clone)]
struct SharedLaw(std::sync::Arc<dyn FailureDistribution>);

impl FailureDistribution for SharedLaw {
    fn kind(&self) -> ckpt_failure::DistributionKind {
        self.0.kind()
    }
    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        self.0.sample(rng)
    }
    fn pdf(&self, x: f64) -> f64 {
        self.0.pdf(x)
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x)
    }
    fn survival(&self, x: f64) -> f64 {
        self.0.survival(x)
    }
    fn hazard(&self, x: f64) -> f64 {
        self.0.hazard(x)
    }
    fn mean(&self) -> f64 {
        self.0.mean()
    }
    fn quantile(&self, p: f64) -> f64 {
        self.0.quantile(p)
    }
    fn conditional_survival(&self, elapsed: f64, x: f64) -> f64 {
        self.0.conditional_survival(elapsed, x)
    }
    fn sample_remaining(&self, elapsed: f64, rng: &mut dyn RandomSource) -> f64 {
        self.0.sample_remaining(elapsed, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ScriptedStream;
    use ckpt_expectation::exact::{expected_time, ExecutionParams};
    use ckpt_failure::{Exponential, Weibull};

    fn seg(work: f64, ckpt: f64, rec: f64) -> Segment {
        Segment::new(work, ckpt, rec).unwrap()
    }

    #[test]
    fn scenario_validation() {
        let scenario = SimulationScenario::exponential(0.001);
        assert!(matches!(scenario.try_run(&[]), Err(SimulationError::EmptySchedule)));
        let zero = SimulationScenario::exponential(0.001).with_trials(0);
        assert!(matches!(
            zero.try_run(&[seg(1.0, 0.0, 0.0)]),
            Err(SimulationError::ZeroTrials)
        ));
        let bad = SimulationScenario::exponential(0.0);
        assert!(bad.try_run(&[seg(1.0, 0.0, 0.0)]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let segments = vec![seg(1000.0, 50.0, 30.0)];
        let a = SimulationScenario::exponential(1e-3).with_seed(5).with_trials(200).run(&segments);
        let b = SimulationScenario::exponential(1e-3).with_seed(5).with_trials(200).run(&segments);
        let c = SimulationScenario::exponential(1e-3).with_seed(6).with_trials(200).run(&segments);
        assert_eq!(a.samples, b.samples);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn monte_carlo_mean_matches_proposition_1() {
        // The headline validation (experiment E1 in miniature): the sample
        // mean of the simulated makespan of a single segment must match the
        // closed form of Proposition 1.
        let lambda = 1.0 / 5_000.0;
        let (w, c, d, r) = (3_600.0, 120.0, 60.0, 90.0);
        let scenario = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(20_000)
            .with_seed(2024);
        let outcome = scenario.run(&[seg(w, c, r)]);
        let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
        let rel = outcome.makespan.relative_error(exact);
        assert!(rel < 0.02, "relative error {rel}, mean {}, exact {exact}", outcome.makespan.mean);
    }

    #[test]
    fn multi_segment_expectation_is_sum_of_segment_expectations() {
        let lambda = 1.0 / 2_000.0;
        let d = 30.0;
        let segments = vec![seg(500.0, 60.0, 0.0), seg(800.0, 60.0, 45.0), seg(300.0, 30.0, 45.0)];
        let scenario = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(20_000)
            .with_seed(99);
        let outcome = scenario.run(&segments);
        let exact: f64 = segments
            .iter()
            .map(|s| {
                expected_time(
                    &ExecutionParams::new(s.work(), s.checkpoint(), d, s.recovery(), lambda).unwrap(),
                )
            })
            .sum();
        let rel = outcome.makespan.relative_error(exact);
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn breakdown_mean_partitions_mean_makespan() {
        let scenario = SimulationScenario::exponential(1e-3)
            .with_downtime(20.0)
            .with_trials(500)
            .with_seed(3);
        let outcome = scenario.run(&[seg(1000.0, 100.0, 50.0)]);
        assert!((outcome.mean_breakdown.total() - outcome.makespan.mean).abs() < 1e-6);
    }

    #[test]
    fn exceedance_and_quantiles() {
        let scenario = SimulationScenario::exponential(1e-4).with_trials(1000).with_seed(1);
        let outcome = scenario.run(&[seg(100.0, 10.0, 5.0)]);
        assert_eq!(outcome.exceedance_probability(0.0), 1.0);
        assert_eq!(outcome.exceedance_probability(f64::INFINITY), 0.0);
        let q50 = outcome.makespan_quantile(0.5);
        let q95 = outcome.makespan_quantile(0.95);
        assert!(q95 >= q50);
        assert!(q50 >= 110.0 - 1e-9);
    }

    #[test]
    fn platform_scenario_exponential_matches_aggregate_rate() {
        // p processors with per-processor rate λ_proc behave like a single
        // platform-level stream of rate p·λ_proc.
        let p = 8;
        let lambda_proc = 1.0 / 40_000.0;
        let lambda = lambda_proc * p as f64;
        let (w, c, d, r) = (2_000.0, 100.0, 30.0, 60.0);
        let platform = SimulationScenario::platform(p, Exponential::new(lambda_proc).unwrap())
            .with_downtime(d)
            .with_trials(15_000)
            .with_seed(7)
            .run(&[seg(w, c, r)]);
        let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
        let rel = platform.makespan.relative_error(exact);
        assert!(rel < 0.03, "relative error {rel}");
    }

    #[test]
    fn weibull_platform_runs_and_differs_from_exponential() {
        let mean = 20_000.0;
        let segments = vec![seg(5_000.0, 200.0, 100.0)];
        let weib = SimulationScenario::platform(4, Weibull::with_mean(0.7, mean).unwrap())
            .with_downtime(30.0)
            .with_trials(4_000)
            .with_seed(11)
            .run(&segments);
        let expo = SimulationScenario::platform(4, Exponential::from_mtbf(mean).unwrap())
            .with_downtime(30.0)
            .with_trials(4_000)
            .with_seed(11)
            .run(&segments);
        assert!(weib.makespan.mean > 0.0 && expo.makespan.mean > 0.0);
        // Same MTBF but different law: means should not coincide exactly.
        assert!((weib.makespan.mean - expo.makespan.mean).abs() > 1e-6);
    }

    #[test]
    fn run_with_streams_uses_the_factory() {
        let scenario = SimulationScenario::exponential(1.0).with_trials(3).with_downtime(0.0);
        // Scripted: no failures at all, regardless of the exponential config.
        let outcome = scenario
            .run_with_streams(&[seg(10.0, 1.0, 0.0)], |_trial| ScriptedStream::new(vec![]))
            .unwrap();
        assert_eq!(outcome.makespan.mean, 11.0);
        assert_eq!(outcome.failures.mean, 0.0);
    }

    #[test]
    fn trials_accessor() {
        assert_eq!(SimulationScenario::exponential(1.0).with_trials(17).trials(), 17);
    }
}

//! Hierarchical-storage execution: mapping a levelled checkpoint plan onto
//! the simulator's segment semantics.
//!
//! The §2 rollback engine ([`crate::engine::simulate`], the policy engines)
//! is already level-aware in the only way execution needs: every
//! [`Segment`] carries the recovery cost *protecting* it, and a failure
//! inside segment `k` recovers with `segments[k].recovery()` — the read
//! cost of the checkpoint written at the end of segment `k − 1`, whatever
//! medium it was written to. Levelled execution therefore reduces to
//! building the right segments: segment `k`'s checkpoint cost is the base
//! write cost scaled by the **written** level's factor, and segment
//! `k + 1`'s recovery is the base read cost scaled by that same level's
//! factor (the level the checkpoint actually lives on). [`levelled_segments`]
//! performs exactly that mapping, so every existing engine — single-run,
//! Monte-Carlo, policy, cluster — executes hierarchical-storage plans
//! unchanged, rollback helpers ([`crate::rollback`]) included.

use ckpt_expectation::storage::StorageLevels;

use crate::error::SimulationError;
use crate::segment::Segment;

/// Builds the executable [`Segment`]s of a levelled checkpoint plan over one
/// execution order, described positionally: `works[i]` is the work at
/// position `i`, `checkpoints[i]` the **base** (level factor 1) cost of a
/// checkpoint written right after it, `recoveries[i]` the base read cost of
/// that same checkpoint. `plan` lists the checkpoints as `(position, level)`
/// pairs in increasing position order, ending at the mandatory final
/// position `n − 1`.
///
/// Segment `k` is charged:
///
/// * the summed work of its positions;
/// * the written level's checkpoint cost, `checkpoints[j_k] ·
///   checkpoint_factor(ℓ_k)`;
/// * a protecting recovery equal to the **previous** segment's written-level
///   read cost, `recoveries[j_{k−1}] · recovery_factor(ℓ_{k−1})` — the
///   initial recovery for `k = 0`, which belongs to no level.
///
/// # Errors
///
/// Propagates [`Segment::new`] validation errors (cannot occur when the
/// positional costs come from a validated instance).
///
/// # Panics
///
/// Panics if the positional slices differ in length, `plan` is empty, a
/// position or level is out of range, positions are not strictly
/// increasing, the final position is not `n − 1`, or the plan overruns a
/// bounded level's slots — malformed plans are programming errors, not
/// simulation outcomes.
pub fn levelled_segments(
    works: &[f64],
    checkpoints: &[f64],
    recoveries: &[f64],
    initial_recovery: f64,
    levels: &StorageLevels,
    plan: &[(usize, usize)],
) -> Result<Vec<Segment>, SimulationError> {
    let n = works.len();
    assert_eq!(checkpoints.len(), n, "one checkpoint cost per position");
    assert_eq!(recoveries.len(), n, "one recovery cost per position");
    assert!(!plan.is_empty(), "a plan needs at least the final checkpoint");
    assert_eq!(plan.last().unwrap().0, n - 1, "final checkpoint is mandatory");
    if let Some((bounded, slots)) = levels.bounded() {
        let used = plan.iter().filter(|(_, level)| *level == bounded).count();
        assert!(used <= slots, "plan uses {used} slots of {slots} on level {bounded}");
    }
    let mut segments = Vec::with_capacity(plan.len());
    let mut start = 0usize;
    let mut recovery = initial_recovery;
    for &(j, level) in plan {
        assert!(start <= j && j < n, "plan positions must be strictly increasing");
        assert!(level < levels.len(), "level {level} out of range");
        let spec = levels.levels()[level];
        let work: f64 = works[start..=j].iter().sum();
        segments.push(Segment::new(work, checkpoints[j] * spec.checkpoint_factor(), recovery)?);
        recovery = recoveries[j] * spec.recovery_factor();
        start = j + 1;
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_expectation::storage::StorageLevel;

    const WORKS: [f64; 4] = [400.0, 100.0, 900.0, 250.0];
    const CKPTS: [f64; 4] = [60.0, 10.0, 45.0, 30.0];
    const RECS: [f64; 4] = [15.0, 60.0, 20.0, 10.0];

    fn two_level() -> StorageLevels {
        StorageLevels::two_level(
            StorageLevel::new(0.25, 0.2).unwrap().with_slots(2),
            StorageLevel::new(1.0, 1.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn charges_written_level_on_write_and_next_recovery() {
        // Fast checkpoint after 1, slow final checkpoint after 3.
        let segs =
            levelled_segments(&WORKS, &CKPTS, &RECS, 5.0, &two_level(), &[(1, 0), (3, 1)]).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].work(), 500.0);
        assert_eq!(segs[0].checkpoint(), 10.0 * 0.25);
        assert_eq!(segs[0].recovery(), 5.0, "first segment recovers from R0, level-free");
        assert_eq!(segs[1].work(), 1150.0);
        assert_eq!(segs[1].checkpoint(), 30.0 * 1.0);
        // The protecting checkpoint was written to the fast tier: reads are
        // scaled by *its* factor, not the writing segment's.
        assert_eq!(segs[1].recovery(), 60.0 * 0.2);
    }

    #[test]
    fn unit_single_level_matches_flat_segments() {
        let flat = StorageLevels::single();
        let segs = levelled_segments(&WORKS, &CKPTS, &RECS, 5.0, &flat, &[(0, 0), (2, 0), (3, 0)])
            .unwrap();
        assert_eq!(segs[0].checkpoint(), CKPTS[0]);
        assert_eq!(segs[1].recovery(), RECS[0]);
        assert_eq!(segs[2].recovery(), RECS[2]);
        assert_eq!(segs[2].checkpoint(), CKPTS[3]);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn slot_overrun_is_rejected() {
        let levels = StorageLevels::two_level(
            StorageLevel::new(0.25, 0.2).unwrap().with_slots(1),
            StorageLevel::new(1.0, 1.0).unwrap(),
        )
        .unwrap();
        let _ = levelled_segments(&WORKS, &CKPTS, &RECS, 5.0, &levels, &[(0, 0), (3, 0)]);
    }

    #[test]
    #[should_panic(expected = "final checkpoint")]
    fn missing_final_checkpoint_is_rejected() {
        let _ = levelled_segments(&WORKS, &CKPTS, &RECS, 5.0, &two_level(), &[(1, 1)]);
    }

    #[test]
    fn levelled_simulation_agrees_with_flat_simulation_of_the_same_segments() {
        // A levelled plan is just segments: the Monte-Carlo engine needs no
        // changes, and an identical manually built flat schedule replays it
        // seed for seed.
        let levels = two_level();
        let plan = [(1, 0), (3, 1)];
        let segs = levelled_segments(&WORKS, &CKPTS, &RECS, 5.0, &levels, &plan).unwrap();
        let manual =
            vec![Segment::new(500.0, 2.5, 5.0).unwrap(), Segment::new(1150.0, 30.0, 12.0).unwrap()];
        let scenario = crate::SimulationScenario::exponential(1e-3)
            .with_downtime(30.0)
            .with_trials(200)
            .with_seed(42);
        let a = scenario.run(&segs);
        let b = scenario.run(&manual);
        assert_eq!(a.samples, b.samples);
    }
}

//! Error type for simulator configuration.

use std::error::Error;
use std::fmt;

/// Error returned when a simulation is configured with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// A numeric parameter must be strictly positive and finite.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A numeric parameter must be non-negative and finite.
    NegativeParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// At least one segment is required.
    EmptySchedule,
    /// At least one Monte-Carlo trial is required.
    ZeroTrials,
    /// A DAG execution order (or a policy's proposed suffix reorder) is not
    /// a permutation of the task set it must cover.
    InvalidTaskOrder,
    /// The failure trace ended before the execution completed.
    TraceExhausted {
        /// Simulated time at which the trace ran out.
        at_time: f64,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            SimulationError::NegativeParameter { name, value } => {
                write!(f, "parameter `{name}` must be non-negative, got {value}")
            }
            SimulationError::EmptySchedule => write!(f, "at least one segment is required"),
            SimulationError::ZeroTrials => write!(f, "at least one Monte-Carlo trial is required"),
            SimulationError::InvalidTaskOrder => {
                write!(f, "the execution order is not a permutation of the tasks it must cover")
            }
            SimulationError::TraceExhausted { at_time } => {
                write!(f, "failure trace exhausted at simulated time {at_time}")
            }
        }
    }
}

impl Error for SimulationError {}

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64, SimulationError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(SimulationError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64, SimulationError> {
    if !value.is_finite() || value < 0.0 {
        return Err(SimulationError::NegativeParameter { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimulationError::EmptySchedule.to_string().contains("segment"));
        assert!(SimulationError::ZeroTrials.to_string().contains("trial"));
        let err = SimulationError::TraceExhausted { at_time: 12.5 };
        assert!(err.to_string().contains("12.5"));
    }

    #[test]
    fn validators() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -0.1).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulationError>();
    }
}

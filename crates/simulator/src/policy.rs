//! Policy-driven simulation: online checkpoint decisions at task boundaries.
//!
//! The fixed-schedule engine ([`crate::engine::simulate`]) replays a
//! partition of the workflow into segments that was decided *offline*. This
//! module closes the loop: execution proceeds **task by task**, and after
//! each completed task an online [`Policy`] is asked the paper's §2 question
//! — *"checkpoint now or keep going?"* — with full visibility of what the
//! execution has observed so far (the clock, the failure times, the last
//! checkpointed position). Failures roll the execution back to the last
//! checkpoint exactly as in the offline model, but the policy is consulted
//! again at every boundary of the re-execution, so it can re-plan
//! mid-execution (insert an extra checkpoint after a burst of failures,
//! stretch segments when the platform turns out healthier than planned).
//!
//! The concrete adaptive policies (static replay, Young-periodic,
//! re-solving, rate-learning) live in the `ckpt-adaptive` crate; this module
//! owns the execution semantics and the Monte-Carlo driver
//! ([`crate::montecarlo`]'s `run_policy`), which reuses the engine's
//! deterministic contiguous-chunk threading — outcomes are bit-identical at
//! any thread count.
//!
//! Beyond chains, [`simulate_dag_policy`] drives **linearised DAG**
//! executions: tasks run in a caller-supplied topological order, and the
//! [`DagPolicy`] consulted at every boundary may both toggle the next
//! checkpoint *and* swap in a new precedence-valid order for the unexecuted
//! suffix — the "re-linearise the remaining graph after a failure" primitive
//! the `ckpt-adaptive` DAG policies build on. The matching Monte-Carlo
//! driver is [`crate::montecarlo`]'s `run_dag_policy`.
//!
//! Semantics (the §2 model at task granularity):
//!
//! 1. tasks execute in chain order; work accumulates since the last
//!    checkpoint;
//! 2. after a task's work completes, the policy decides whether to
//!    checkpoint (the decision after the **final** task is forced to
//!    "checkpoint", matching the model's mandatory final checkpoint);
//! 3. a failure during work or checkpointing loses everything back to the
//!    last completed checkpoint, then costs a failure-free downtime `D` and
//!    an interruptible recovery (the recovery cost of the last checkpointed
//!    task, or `R₀` before the first checkpoint), after which execution
//!    resumes at the task following the last checkpoint.

use crate::engine::{ExecutionRecord, TimeBreakdown};
use crate::error::{ensure_non_negative, SimulationError};
use crate::event_log::ExecutionEvent;
use crate::rollback::{
    absorb_recovery_failure, absorb_run_failure, commit_run, run_phase, PhaseOutcome,
};
use crate::stream::FailureStream;

/// One task of a chain executed under an online policy.
///
/// Unlike [`crate::segment::Segment`] (whose `recovery` protects the segment
/// *itself*), a task's `recovery` is the cost of recovering **from this
/// task's own checkpoint** — it is paid by failures occurring *after* the
/// checkpoint is taken, which is only known online.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChainTask {
    work: f64,
    checkpoint: f64,
    recovery: f64,
}

impl ChainTask {
    /// Creates a task: `work` seconds of computation (> 0), the cost of
    /// checkpointing right after it (≥ 0) and the cost of recovering from
    /// that checkpoint (≥ 0).
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] if any argument is invalid.
    pub fn new(work: f64, checkpoint: f64, recovery: f64) -> Result<Self, SimulationError> {
        if !work.is_finite() || work <= 0.0 {
            return Err(SimulationError::NonPositiveParameter { name: "work", value: work });
        }
        Ok(ChainTask {
            work,
            checkpoint: ensure_non_negative("checkpoint", checkpoint)?,
            recovery: ensure_non_negative("recovery", recovery)?,
        })
    }

    /// The work duration of the task.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// The cost of checkpointing right after the task.
    pub fn checkpoint(&self) -> f64 {
        self.checkpoint
    }

    /// The cost of recovering from this task's checkpoint.
    pub fn recovery(&self) -> f64 {
        self.recovery
    }
}

/// What an online policy sees at a decision point (a just-completed task).
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext<'a> {
    /// Position (index into the task chain) of the task that just completed.
    pub position: usize,
    /// Current simulated time.
    pub clock: f64,
    /// Position of the last task whose checkpoint completed, or `None` if
    /// nothing has been checkpointed yet.
    pub last_checkpoint: Option<usize>,
    /// Times of every failure observed so far (work, checkpoint and recovery
    /// failures alike), in increasing order.
    pub failure_times: &'a [f64],
}

impl DecisionContext<'_> {
    /// The number of failures observed so far.
    pub fn failures_observed(&self) -> usize {
        self.failure_times.len()
    }

    /// The position execution would roll back to on a failure right now
    /// (the task after the last checkpoint).
    pub fn resume_position(&self) -> usize {
        self.last_checkpoint.map_or(0, |k| k + 1)
    }
}

/// An online checkpoint policy, consulted at every task boundary.
///
/// Implementations may carry arbitrary mutable state (a running failure-rate
/// estimate, a re-solved plan); one policy value drives one execution. The
/// Monte-Carlo driver constructs a fresh policy per trial through a factory,
/// so trials stay independent and the threading deterministic.
pub trait Policy {
    /// Whether to checkpoint right after the just-completed task described
    /// by `ctx`. Not consulted for the final task, whose checkpoint is
    /// mandatory.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool;
}

impl<P: Policy + ?Sized> Policy for &mut P {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        (**self).decide(ctx)
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        (**self).decide(ctx)
    }
}

/// The outcome of one policy-driven execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyExecutionRecord {
    /// Makespan, failure count and time breakdown (the same buckets as the
    /// fixed-schedule engine: `useful + lost + downtime + recovery`
    /// partitions the makespan).
    pub record: ExecutionRecord,
    /// Checkpoints taken, the mandatory final one included.
    pub checkpoints: u64,
    /// Policy consultations (one per non-final task boundary reached,
    /// re-executions included).
    pub decisions: u64,
}

/// A policy-driven execution with its full event log.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyLoggedExecution {
    /// The aggregate outcome.
    pub outcome: PolicyExecutionRecord,
    /// The chronological event log; policy decisions appear as
    /// [`ExecutionEvent::PolicyDecision`] events. The `segment` index of
    /// every event is the **task position** in the chain.
    pub events: Vec<ExecutionEvent>,
}

/// Simulates one policy-driven execution of `tasks` (see the module docs for
/// the exact semantics).
///
/// `initial_recovery` is the cost `R₀` of restoring the initial state
/// (failures before the first checkpoint), `downtime` the failure-free
/// downtime `D` paid after every failure.
///
/// # Errors
///
/// * [`SimulationError::EmptySchedule`] if `tasks` is empty;
/// * [`SimulationError::NegativeParameter`] if `downtime` or
///   `initial_recovery` is negative.
pub fn simulate_policy<P, S>(
    tasks: &[ChainTask],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
) -> Result<PolicyExecutionRecord, SimulationError>
where
    P: Policy + ?Sized,
    S: FailureStream + ?Sized,
{
    policy_core(tasks, initial_recovery, downtime, policy, stream, None)
}

/// [`simulate_policy`] with full event logging (decision events included).
///
/// # Errors
///
/// Same contract as [`simulate_policy`].
pub fn simulate_policy_with_log<P, S>(
    tasks: &[ChainTask],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
) -> Result<PolicyLoggedExecution, SimulationError>
where
    P: Policy + ?Sized,
    S: FailureStream + ?Sized,
{
    let mut events = Vec::new();
    let outcome =
        policy_core(tasks, initial_recovery, downtime, policy, stream, Some(&mut events))?;
    Ok(PolicyLoggedExecution { outcome, events })
}

/// The engine shared by the plain and the logged entry points.
fn policy_core<P, S>(
    tasks: &[ChainTask],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
    mut events: Option<&mut Vec<ExecutionEvent>>,
) -> Result<PolicyExecutionRecord, SimulationError>
where
    P: Policy + ?Sized,
    S: FailureStream + ?Sized,
{
    if tasks.is_empty() {
        return Err(SimulationError::EmptySchedule);
    }
    let downtime = ensure_non_negative("downtime", downtime)?;
    let initial_recovery = ensure_non_negative("initial_recovery", initial_recovery)?;

    let n = tasks.len();
    let mut clock = 0.0f64;
    let mut breakdown = TimeBreakdown::default();
    let mut failure_times: Vec<f64> = Vec::new();
    let mut last_checkpoint: Option<usize> = None;
    // Start of the current uncheckpointed run: everything executed since is
    // lost on failure, committed as useful when a checkpoint completes.
    let mut run_start = 0.0f64;
    let mut checkpoints = 0u64;
    let mut decisions = 0u64;
    let mut position = 0usize;

    macro_rules! log {
        ($event:expr) => {
            if let Some(sink) = events.as_deref_mut() {
                sink.push($event);
            }
        };
    }

    while position < n {
        log!(ExecutionEvent::AttemptStarted { segment: position, time: clock });

        // Work phase of the current task.
        let work = tasks[position].work;
        if let PhaseOutcome::Failed { at } = run_phase(stream, &mut clock, work) {
            position = handle_failure(
                last_checkpoint.map_or(initial_recovery, |k| tasks[k].recovery),
                downtime,
                at,
                position,
                last_checkpoint,
                stream,
                &mut clock,
                &mut run_start,
                &mut failure_times,
                &mut breakdown,
                &mut events,
            );
            continue;
        }

        // Decision point: the final task's checkpoint is mandatory (the
        // model's final checkpoint), every other boundary asks the policy.
        let take = if position + 1 == n {
            true
        } else {
            decisions += 1;
            let ctx =
                DecisionContext { position, clock, last_checkpoint, failure_times: &failure_times };
            let take = policy.decide(&ctx);
            log!(ExecutionEvent::PolicyDecision {
                segment: position,
                time: clock,
                checkpoint: take
            });
            take
        };

        if take {
            let ckpt = tasks[position].checkpoint;
            if ckpt > 0.0 {
                if let PhaseOutcome::Failed { at } = run_phase(stream, &mut clock, ckpt) {
                    position = handle_failure(
                        last_checkpoint.map_or(initial_recovery, |k| tasks[k].recovery),
                        downtime,
                        at,
                        position,
                        last_checkpoint,
                        stream,
                        &mut clock,
                        &mut run_start,
                        &mut failure_times,
                        &mut breakdown,
                        &mut events,
                    );
                    continue;
                }
            }
            // The checkpoint is durable: commit the run as useful time.
            commit_run(clock, &mut run_start, &mut breakdown);
            last_checkpoint = Some(position);
            checkpoints += 1;
            log!(ExecutionEvent::SegmentCompleted { segment: position, time: clock });
        }
        position += 1;
    }

    let failures = failure_times.len() as u64;
    Ok(PolicyExecutionRecord {
        record: ExecutionRecord { makespan: clock, failures, breakdown },
        checkpoints,
        decisions,
    })
}

/// Failure at `failure_time` while executing work or checkpoint of the task
/// at `position`: lose the run back to the last checkpoint, pay the
/// failure-free downtime, recover (interruptibly — recovery failures pay
/// another downtime and restart the recovery), and return the position
/// execution resumes at. `recovery` is the cost of restoring the last
/// durable state (the last checkpointed task's recovery, or `R₀`), resolved
/// by the caller — the chain engine indexes `tasks` by position, the DAG
/// engine through its execution order.
#[allow(clippy::too_many_arguments)] // flat engine state, called from two engines
fn handle_failure<S: FailureStream + ?Sized>(
    recovery: f64,
    downtime: f64,
    failure_time: f64,
    position: usize,
    last_checkpoint: Option<usize>,
    stream: &mut S,
    clock: &mut f64,
    run_start: &mut f64,
    failure_times: &mut Vec<f64>,
    breakdown: &mut TimeBreakdown,
    events: &mut Option<&mut Vec<ExecutionEvent>>,
) -> usize {
    let mut log = |event: ExecutionEvent| {
        if let Some(sink) = events.as_deref_mut() {
            sink.push(event);
        }
    };
    log(ExecutionEvent::Failure {
        segment: position,
        time: failure_time,
        wasted: failure_time - *run_start,
    });
    absorb_run_failure(failure_time, downtime, clock, *run_start, failure_times, breakdown);
    log(ExecutionEvent::DowntimeCompleted { segment: position, time: *clock });
    if recovery > 0.0 {
        loop {
            match run_phase(stream, clock, recovery) {
                PhaseOutcome::Failed { at } => {
                    log(ExecutionEvent::Failure {
                        segment: position,
                        time: at,
                        wasted: at - *clock,
                    });
                    absorb_recovery_failure(at, downtime, clock, failure_times, breakdown);
                    log(ExecutionEvent::DowntimeCompleted { segment: position, time: *clock });
                }
                PhaseOutcome::Completed => {
                    breakdown.recovery += recovery;
                    log(ExecutionEvent::RecoveryCompleted { segment: position, time: *clock });
                    break;
                }
            }
        }
    }
    *run_start = *clock;
    last_checkpoint.map_or(0, |k| k + 1)
}

/// What a DAG policy sees at a decision point (a just-completed task of the
/// current execution order).
///
/// Unlike the chain context ([`DecisionContext`]), the DAG context carries
/// the **current order** itself: the policy may not only toggle the next
/// checkpoint but also swap in a new order for the unexecuted suffix (a
/// re-linearisation of the remaining graph), and it needs to see the order
/// it would be amending.
#[derive(Debug, Clone, Copy)]
pub struct DagDecisionContext<'a> {
    /// Position (index into the current order) of the task that just
    /// completed.
    pub position: usize,
    /// The task (index into the task slice) that just completed —
    /// `order[position]`.
    pub task: usize,
    /// Current simulated time.
    pub clock: f64,
    /// Position of the last task whose checkpoint completed, or `None` if
    /// nothing has been checkpointed yet.
    pub last_checkpoint: Option<usize>,
    /// Times of every failure observed so far, in increasing order.
    pub failure_times: &'a [f64],
    /// The current execution order (task indices); positions
    /// `0..=position` are fixed history, positions `position + 1..` are the
    /// unexecuted suffix a [`DagDecision::reorder_suffix`] may permute.
    pub order: &'a [usize],
}

impl DagDecisionContext<'_> {
    /// The number of failures observed so far.
    pub fn failures_observed(&self) -> usize {
        self.failure_times.len()
    }

    /// The position execution would roll back to on a failure right now
    /// (the position after the last checkpoint).
    pub fn resume_position(&self) -> usize {
        self.last_checkpoint.map_or(0, |k| k + 1)
    }

    /// The unexecuted suffix of the current order (positions strictly after
    /// the current one) — the only part a decision may reorder.
    pub fn suffix(&self) -> &[usize] {
        &self.order[self.position + 1..]
    }
}

/// What a [`DagPolicy`] decides at a task boundary.
#[derive(Debug, Clone, Default)]
pub struct DagDecision {
    /// Whether to checkpoint right after the just-completed task.
    pub checkpoint: bool,
    /// A replacement execution order for the **unexecuted suffix**
    /// (positions strictly after the current one), as task indices. Must be
    /// a permutation of [`DagDecisionContext::suffix`] — the engine verifies
    /// the permutation and rejects the run with
    /// [`SimulationError::InvalidTaskOrder`] otherwise. **Precedence
    /// validity is the policy's contract**: the engine has no knowledge of
    /// the task graph, so policies must only propose suffixes that keep the
    /// whole order topological (the `ckpt-adaptive` DAG policies derive
    /// theirs from `ckpt_dag` re-linearisations, which guarantee it).
    pub reorder_suffix: Option<Vec<usize>>,
}

impl DagDecision {
    /// A plain "checkpoint or not" decision leaving the order untouched.
    pub fn keep_order(checkpoint: bool) -> Self {
        DagDecision { checkpoint, reorder_suffix: None }
    }
}

/// An online DAG policy, consulted at every task boundary of a linearised
/// DAG execution.
///
/// The contract extends [`Policy`]: besides the checkpoint toggle, a
/// decision may re-linearise the unexecuted suffix of the order (see
/// [`DagDecision`]). One policy value drives one execution; the Monte-Carlo
/// driver builds a fresh policy per trial.
pub trait DagPolicy {
    /// The decision for the boundary described by `ctx`. Not consulted after
    /// the final task, whose checkpoint is mandatory and whose suffix is
    /// empty.
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision;
}

impl<P: DagPolicy + ?Sized> DagPolicy for &mut P {
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
        (**self).decide(ctx)
    }
}

impl<P: DagPolicy + ?Sized> DagPolicy for Box<P> {
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
        (**self).decide(ctx)
    }
}

/// The outcome of one policy-driven DAG execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DagPolicyExecutionRecord {
    /// Makespan, failure count and time breakdown (same buckets as the
    /// fixed-schedule engine).
    pub record: ExecutionRecord,
    /// Checkpoints taken, the mandatory final one included.
    pub checkpoints: u64,
    /// Policy consultations (one per non-final boundary reached,
    /// re-executions included).
    pub decisions: u64,
    /// Decisions that swapped in a new suffix order.
    pub reorders: u64,
    /// The order the execution finished with (the initial order with every
    /// accepted suffix reorder applied).
    pub final_order: Vec<usize>,
}

/// A policy-driven DAG execution with its full event log.
#[derive(Debug, Clone, PartialEq)]
pub struct DagPolicyLoggedExecution {
    /// The aggregate outcome.
    pub outcome: DagPolicyExecutionRecord,
    /// The chronological event log; the `segment` index of every event is
    /// the **order position** the event concerns.
    pub events: Vec<ExecutionEvent>,
}

/// Simulates one policy-driven execution of a linearised DAG: the tasks of
/// `tasks` are executed in the order given by `order` (task indices), with
/// the §2 rollback semantics of [`simulate_policy`] at the granularity of
/// order positions, and `policy` consulted at every non-final boundary.
///
/// The execution tracks the **completed-and-checkpointed frontier**: a
/// checkpoint after position `p` durably commits positions `0..=p`, and a
/// failure rolls back to the position after the last durable checkpoint.
/// Decisions may both toggle the next checkpoint and swap in a new order
/// for the unexecuted suffix (see [`DagDecision`]); the engine verifies
/// each proposed suffix is a permutation of the current one. A chain
/// executed with the identity order reproduces [`simulate_policy`] exactly.
///
/// # Errors
///
/// * [`SimulationError::EmptySchedule`] if `tasks` is empty;
/// * [`SimulationError::InvalidTaskOrder`] if `order` is not a permutation
///   of `0..tasks.len()`, or a decision proposes a suffix that is not a
///   permutation of the unexecuted suffix;
/// * [`SimulationError::NegativeParameter`] if `downtime` or
///   `initial_recovery` is negative.
pub fn simulate_dag_policy<P, S>(
    tasks: &[ChainTask],
    order: &[usize],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
) -> Result<DagPolicyExecutionRecord, SimulationError>
where
    P: DagPolicy + ?Sized,
    S: FailureStream + ?Sized,
{
    dag_policy_core(tasks, order, initial_recovery, downtime, policy, stream, None)
}

/// [`simulate_dag_policy`] with full event logging (decision events
/// included).
///
/// # Errors
///
/// Same contract as [`simulate_dag_policy`].
pub fn simulate_dag_policy_with_log<P, S>(
    tasks: &[ChainTask],
    order: &[usize],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
) -> Result<DagPolicyLoggedExecution, SimulationError>
where
    P: DagPolicy + ?Sized,
    S: FailureStream + ?Sized,
{
    let mut events = Vec::new();
    let outcome = dag_policy_core(
        tasks,
        order,
        initial_recovery,
        downtime,
        policy,
        stream,
        Some(&mut events),
    )?;
    Ok(DagPolicyLoggedExecution { outcome, events })
}

/// Verifies that `proposed` is a permutation of `current`, using `seen` as a
/// scratch bitmap over task indices (`seen` must be all-false on entry and
/// is restored to all-false before returning). One `O(k)` sweep: each
/// proposed task consumes its mark, so membership and duplicates are
/// checked together.
fn is_permutation_of(current: &[usize], proposed: &[usize], seen: &mut [bool]) -> bool {
    if proposed.len() != current.len() {
        return false;
    }
    for &t in current {
        seen[t] = true;
    }
    let ok = proposed.iter().all(|&t| t < seen.len() && std::mem::replace(&mut seen[t], false));
    for &t in current {
        seen[t] = false;
    }
    ok
}

/// The engine shared by the plain and the logged DAG entry points.
fn dag_policy_core<P, S>(
    tasks: &[ChainTask],
    order: &[usize],
    initial_recovery: f64,
    downtime: f64,
    policy: &mut P,
    stream: &mut S,
    mut events: Option<&mut Vec<ExecutionEvent>>,
) -> Result<DagPolicyExecutionRecord, SimulationError>
where
    P: DagPolicy + ?Sized,
    S: FailureStream + ?Sized,
{
    if tasks.is_empty() {
        return Err(SimulationError::EmptySchedule);
    }
    let n = tasks.len();
    let mut seen = vec![false; n];
    if order.len() != n {
        return Err(SimulationError::InvalidTaskOrder);
    }
    for &t in order {
        if t >= n || seen[t] {
            return Err(SimulationError::InvalidTaskOrder);
        }
        seen[t] = true;
    }
    seen.fill(false);
    let downtime = ensure_non_negative("downtime", downtime)?;
    let initial_recovery = ensure_non_negative("initial_recovery", initial_recovery)?;

    let mut order: Vec<usize> = order.to_vec();
    let mut clock = 0.0f64;
    let mut breakdown = TimeBreakdown::default();
    let mut failure_times: Vec<f64> = Vec::new();
    let mut last_checkpoint: Option<usize> = None;
    let mut run_start = 0.0f64;
    let mut checkpoints = 0u64;
    let mut decisions = 0u64;
    let mut reorders = 0u64;
    let mut position = 0usize;

    macro_rules! log {
        ($event:expr) => {
            if let Some(sink) = events.as_deref_mut() {
                sink.push($event);
            }
        };
    }
    // Recovery cost of the last durable state, through the current order.
    macro_rules! protecting_recovery {
        () => {
            last_checkpoint.map_or(initial_recovery, |k| tasks[order[k]].recovery)
        };
    }

    while position < n {
        log!(ExecutionEvent::AttemptStarted { segment: position, time: clock });

        let work = tasks[order[position]].work;
        if let PhaseOutcome::Failed { at } = run_phase(stream, &mut clock, work) {
            position = handle_failure(
                protecting_recovery!(),
                downtime,
                at,
                position,
                last_checkpoint,
                stream,
                &mut clock,
                &mut run_start,
                &mut failure_times,
                &mut breakdown,
                &mut events,
            );
            continue;
        }

        // Decision point: the final boundary forces the checkpoint and has
        // no suffix to reorder; every other boundary asks the policy.
        let take = if position + 1 == n {
            true
        } else {
            decisions += 1;
            let ctx = DagDecisionContext {
                position,
                task: order[position],
                clock,
                last_checkpoint,
                failure_times: &failure_times,
                order: &order,
            };
            let decision = policy.decide(&ctx);
            log!(ExecutionEvent::PolicyDecision {
                segment: position,
                time: clock,
                checkpoint: decision.checkpoint
            });
            if let Some(suffix) = decision.reorder_suffix {
                if !is_permutation_of(&order[position + 1..], &suffix, &mut seen) {
                    return Err(SimulationError::InvalidTaskOrder);
                }
                order[position + 1..].copy_from_slice(&suffix);
                reorders += 1;
            }
            decision.checkpoint
        };

        if take {
            let ckpt = tasks[order[position]].checkpoint;
            if ckpt > 0.0 {
                if let PhaseOutcome::Failed { at } = run_phase(stream, &mut clock, ckpt) {
                    position = handle_failure(
                        protecting_recovery!(),
                        downtime,
                        at,
                        position,
                        last_checkpoint,
                        stream,
                        &mut clock,
                        &mut run_start,
                        &mut failure_times,
                        &mut breakdown,
                        &mut events,
                    );
                    continue;
                }
            }
            commit_run(clock, &mut run_start, &mut breakdown);
            last_checkpoint = Some(position);
            checkpoints += 1;
            log!(ExecutionEvent::SegmentCompleted { segment: position, time: clock });
        }
        position += 1;
    }

    let failures = failure_times.len() as u64;
    Ok(DagPolicyExecutionRecord {
        record: ExecutionRecord { makespan: clock, failures, breakdown },
        checkpoints,
        decisions,
        reorders,
        final_order: order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::segment::Segment;
    use crate::stream::{ExponentialStream, NoFailureStream, ScriptedStream};

    fn task(work: f64, ckpt: f64, rec: f64) -> ChainTask {
        ChainTask::new(work, ckpt, rec).unwrap()
    }

    /// A policy replaying fixed per-position decisions.
    struct Flags(Vec<bool>);
    impl Policy for Flags {
        fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
            self.0[ctx.position]
        }
    }

    /// A policy that never checkpoints (the engine still forces the final
    /// one).
    struct Never;
    impl Policy for Never {
        fn decide(&mut self, _ctx: &DecisionContext<'_>) -> bool {
            false
        }
    }

    #[test]
    fn validates_inputs() {
        let mut stream = NoFailureStream;
        assert!(matches!(
            simulate_policy(&[], 0.0, 0.0, &mut Never, &mut stream),
            Err(SimulationError::EmptySchedule)
        ));
        let tasks = [task(1.0, 0.0, 0.0)];
        assert!(simulate_policy(&tasks, 0.0, -1.0, &mut Never, &mut stream).is_err());
        assert!(simulate_policy(&tasks, -1.0, 0.0, &mut Never, &mut stream).is_err());
        assert!(ChainTask::new(0.0, 1.0, 1.0).is_err());
        assert!(ChainTask::new(1.0, -1.0, 1.0).is_err());
        assert!(ChainTask::new(1.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn failure_free_run_takes_nominal_time_and_forces_final_checkpoint() {
        let tasks = vec![task(100.0, 10.0, 5.0), task(200.0, 20.0, 5.0)];
        let mut stream = NoFailureStream;
        let out = simulate_policy(&tasks, 0.0, 30.0, &mut Never, &mut stream).unwrap();
        // No intermediate checkpoint, but the final one is mandatory.
        assert_eq!(out.checkpoints, 1);
        assert_eq!(out.decisions, 1);
        assert_eq!(out.record.makespan, 320.0);
        assert_eq!(out.record.breakdown.useful, 320.0);
        assert_eq!(out.record.failures, 0);
    }

    #[test]
    fn static_flags_match_the_fixed_schedule_engine() {
        // The same plan, played through the policy engine and through the
        // fixed-schedule engine on the equivalent segments, must agree on
        // identical failure streams.
        let tasks = vec![
            task(500.0, 60.0, 30.0),
            task(900.0, 45.0, 60.0),
            task(200.0, 20.0, 40.0),
            task(700.0, 80.0, 25.0),
        ];
        let flags = vec![true, false, true, true];
        let initial_recovery = 15.0;
        // Segment view: positions {0}, {1,2}, {3}; recovery protecting a
        // segment is the recovery of the previous checkpointed task.
        let segments = vec![
            Segment::new(500.0, 60.0, initial_recovery).unwrap(),
            Segment::new(1100.0, 20.0, 30.0).unwrap(),
            Segment::new(700.0, 80.0, 40.0).unwrap(),
        ];
        for seed in 0..25u64 {
            let mut s1 = ExponentialStream::new(1.0 / 900.0, seed);
            let mut s2 = ExponentialStream::new(1.0 / 900.0, seed);
            let fixed = simulate(&segments, 25.0, &mut s1).unwrap();
            let online =
                simulate_policy(&tasks, initial_recovery, 25.0, &mut Flags(flags.clone()), &mut s2)
                    .unwrap();
            assert_eq!(fixed.failures, online.record.failures, "seed {seed}");
            assert!(
                (fixed.makespan - online.record.makespan).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                fixed.makespan,
                online.record.makespan
            );
            assert!((fixed.breakdown.useful - online.record.breakdown.useful).abs() < 1e-9);
            assert!((fixed.breakdown.lost - online.record.breakdown.lost).abs() < 1e-9);
            assert_eq!(online.checkpoints, 3);
        }
    }

    #[test]
    fn breakdown_partitions_makespan() {
        let tasks = vec![task(100.0, 10.0, 20.0), task(150.0, 15.0, 25.0), task(80.0, 5.0, 10.0)];
        let mut stream = ScriptedStream::new(vec![30.0, 60.0, 200.0, 390.0]);
        let out =
            simulate_policy(&tasks, 12.0, 7.5, &mut Flags(vec![true; 3]), &mut stream).unwrap();
        assert!((out.record.breakdown.total() - out.record.makespan).abs() < 1e-9);
        // 30 and 60 strike task 0's attempts, 200 task 1's work and 390 task
        // 1's checkpoint.
        assert_eq!(out.record.failures, 4);
    }

    #[test]
    fn rollback_resumes_after_the_last_checkpoint() {
        // Tasks of 100 s each; checkpoint after task 0 (cost 10, recovery
        // 20). Failure at t = 250, i.e. 140 s into the run following the
        // checkpoint (tasks 1 and part of 2): roll back to task 1, not 0.
        let tasks = vec![task(100.0, 10.0, 20.0), task(100.0, 0.0, 0.0), task(100.0, 0.0, 0.0)];
        let mut stream = ScriptedStream::new(vec![250.0]);
        let mut policy = Flags(vec![true, false, false]);
        let logged = simulate_policy_with_log(&tasks, 5.0, 8.0, &mut policy, &mut stream).unwrap();
        // Timeline: ckpt done at 110; failure at 250 loses 140; downtime 8
        // (258), recovery 20 (278); re-run tasks 1..2 (200) -> 478; no
        // checkpoint cost at the end (task 2's C = 0). Final checkpoint
        // completes at 478.
        assert!((logged.outcome.record.makespan - 478.0).abs() < 1e-9);
        assert!((logged.outcome.record.breakdown.lost - 140.0).abs() < 1e-9);
        assert_eq!(logged.outcome.record.failures, 1);
        // Task 0 is attempted once; tasks 1 and 2 twice.
        let attempts = |p: usize| {
            logged
                .events
                .iter()
                .filter(|e| matches!(e, ExecutionEvent::AttemptStarted { segment, .. } if *segment == p))
                .count()
        };
        assert_eq!(attempts(0), 1);
        assert_eq!(attempts(1), 2);
        assert_eq!(attempts(2), 2);
    }

    #[test]
    fn decision_events_are_logged_with_their_outcome() {
        let tasks = vec![task(10.0, 1.0, 1.0), task(10.0, 1.0, 1.0), task(10.0, 1.0, 1.0)];
        let mut stream = NoFailureStream;
        let mut policy = Flags(vec![false, true, false]);
        let logged = simulate_policy_with_log(&tasks, 0.0, 0.0, &mut policy, &mut stream).unwrap();
        let decisions: Vec<(usize, bool)> = logged
            .events
            .iter()
            .filter_map(|e| match *e {
                ExecutionEvent::PolicyDecision { segment, checkpoint, .. } => {
                    Some((segment, checkpoint))
                }
                _ => None,
            })
            .collect();
        // The final boundary is mandatory, not a decision.
        assert_eq!(decisions, vec![(0, false), (1, true)]);
        assert_eq!(logged.outcome.decisions, 2);
        assert_eq!(logged.outcome.checkpoints, 2);
    }

    #[test]
    fn policy_can_adapt_to_observed_failures() {
        // A policy that checkpoints only once it has seen a failure: the
        // second pass over task 0 checkpoints where the first did not.
        struct AfterFirstFailure;
        impl Policy for AfterFirstFailure {
            fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
                !ctx.failure_times.is_empty()
            }
        }
        let tasks = vec![task(100.0, 10.0, 0.0), task(100.0, 10.0, 0.0)];
        // Failure at t = 150: inside task 1's work (no checkpoint was taken
        // after task 0 on the first pass).
        let mut stream = ScriptedStream::new(vec![150.0]);
        let logged =
            simulate_policy_with_log(&tasks, 0.0, 0.0, &mut AfterFirstFailure, &mut stream)
                .unwrap();
        let decisions: Vec<bool> = logged
            .events
            .iter()
            .filter_map(|e| match *e {
                ExecutionEvent::PolicyDecision { checkpoint, .. } => Some(checkpoint),
                _ => None,
            })
            .collect();
        assert_eq!(decisions, vec![false, true], "re-execution decision must flip");
        // Timeline: 150 lost, rollback to 0; re-run task 0 (100) + ckpt
        // (10) at 260, task 1 (100) + final ckpt (10) at 370.
        assert!((logged.outcome.record.makespan - 370.0).abs() < 1e-9);
        assert_eq!(logged.outcome.checkpoints, 2);
    }

    /// A DAG policy replaying fixed per-position decisions, never reordering.
    struct DagFlags(Vec<bool>);
    impl DagPolicy for DagFlags {
        fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
            DagDecision::keep_order(self.0[ctx.position])
        }
    }

    #[test]
    fn dag_engine_with_identity_order_matches_the_chain_engine() {
        let tasks = vec![
            task(500.0, 60.0, 30.0),
            task(900.0, 45.0, 60.0),
            task(200.0, 20.0, 40.0),
            task(700.0, 80.0, 25.0),
        ];
        let order: Vec<usize> = (0..tasks.len()).collect();
        let flags = vec![true, false, true, true];
        for seed in 0..20u64 {
            let mut s1 = ExponentialStream::new(1.0 / 900.0, seed);
            let mut s2 = ExponentialStream::new(1.0 / 900.0, seed);
            let chain =
                simulate_policy(&tasks, 15.0, 25.0, &mut Flags(flags.clone()), &mut s1).unwrap();
            let dag = simulate_dag_policy(
                &tasks,
                &order,
                15.0,
                25.0,
                &mut DagFlags(flags.clone()),
                &mut s2,
            )
            .unwrap();
            assert_eq!(chain.record, dag.record, "seed {seed}");
            assert_eq!(chain.checkpoints, dag.checkpoints, "seed {seed}");
            assert_eq!(chain.decisions, dag.decisions, "seed {seed}");
            assert_eq!(dag.reorders, 0);
            assert_eq!(dag.final_order, order);
        }
    }

    #[test]
    fn dag_engine_executes_through_the_order_indirection() {
        // Order [2, 0, 1]: position costs must come from the ordered tasks.
        let tasks = vec![task(100.0, 10.0, 5.0), task(200.0, 20.0, 6.0), task(300.0, 30.0, 7.0)];
        let order = vec![2usize, 0, 1];
        let mut stream = NoFailureStream;
        let out = simulate_dag_policy(
            &tasks,
            &order,
            0.0,
            0.0,
            &mut DagFlags(vec![true, false, false]),
            &mut stream,
        )
        .unwrap();
        // 300 + 30 (ckpt after T2) + 100 + 200 + 20 (final ckpt = T1's).
        assert!((out.record.makespan - 650.0).abs() < 1e-9);
        assert_eq!(out.checkpoints, 2);
    }

    #[test]
    fn dag_rollback_recovers_with_the_ordered_tasks_recovery() {
        // Order [1, 0]; checkpoint after position 0 (task 1, recovery 80).
        // A failure during position 1's work must pay task 1's recovery.
        let tasks = vec![task(100.0, 0.0, 5.0), task(100.0, 10.0, 80.0)];
        let order = vec![1usize, 0];
        let mut stream = ScriptedStream::new(vec![150.0]);
        let out = simulate_dag_policy(
            &tasks,
            &order,
            3.0,
            7.0,
            &mut DagFlags(vec![true, false]),
            &mut stream,
        )
        .unwrap();
        // 100 + 10 (ckpt at 110); failure at 150 loses 40; downtime 7
        // (157), recovery 80 (237); re-run task 0 (100) -> 337; final ckpt
        // costs 0.
        assert!((out.record.makespan - 337.0).abs() < 1e-9, "makespan {}", out.record.makespan);
        assert!((out.record.breakdown.recovery - 80.0).abs() < 1e-9);
    }

    /// A DAG policy that swaps the two tasks following the first boundary.
    struct SwapOnce {
        done: bool,
    }
    impl DagPolicy for SwapOnce {
        fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
            if !self.done && ctx.suffix().len() >= 2 {
                self.done = true;
                let mut suffix = ctx.suffix().to_vec();
                suffix.swap(0, 1);
                return DagDecision { checkpoint: true, reorder_suffix: Some(suffix) };
            }
            DagDecision::keep_order(false)
        }
    }

    #[test]
    fn suffix_reorders_are_applied_and_counted() {
        let tasks = vec![task(100.0, 1.0, 1.0), task(200.0, 2.0, 2.0), task(300.0, 3.0, 3.0)];
        let order = vec![0usize, 1, 2];
        let mut stream = NoFailureStream;
        let out = simulate_dag_policy(
            &tasks,
            &order,
            0.0,
            0.0,
            &mut SwapOnce { done: false },
            &mut stream,
        )
        .unwrap();
        assert_eq!(out.reorders, 1);
        assert_eq!(out.final_order, vec![0, 2, 1]);
        // 100 + 1 (ckpt) + 300 + 200 + 2 (final ckpt = task 1's).
        assert!((out.record.makespan - 603.0).abs() < 1e-9);
    }

    /// A DAG policy proposing a suffix that is not a permutation.
    struct BadReorder;
    impl DagPolicy for BadReorder {
        fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
            DagDecision {
                checkpoint: false,
                reorder_suffix: Some(vec![ctx.task; ctx.suffix().len()]),
            }
        }
    }

    #[test]
    fn dag_engine_validates_orders_and_reorders() {
        let tasks = vec![task(1.0, 0.0, 0.0), task(1.0, 0.0, 0.0)];
        let mut stream = NoFailureStream;
        let mut never = DagFlags(vec![false, false]);
        // Wrong length, out-of-range and duplicate initial orders.
        for bad in [vec![0usize], vec![0, 2], vec![0, 0]] {
            assert!(matches!(
                simulate_dag_policy(&tasks, &bad, 0.0, 0.0, &mut never, &mut stream),
                Err(SimulationError::InvalidTaskOrder)
            ));
        }
        assert!(matches!(
            simulate_dag_policy(&tasks, &[0, 1], 0.0, 0.0, &mut BadReorder, &mut stream),
            Err(SimulationError::InvalidTaskOrder)
        ));
        assert!(matches!(
            simulate_dag_policy(&[], &[], 0.0, 0.0, &mut never, &mut stream),
            Err(SimulationError::EmptySchedule)
        ));
    }

    #[test]
    fn dag_logged_and_plain_runs_agree() {
        let tasks = vec![task(300.0, 30.0, 15.0), task(500.0, 25.0, 40.0), task(150.0, 10.0, 5.0)];
        let order = vec![0usize, 2, 1];
        for seed in 0..10u64 {
            let mut s1 = ExponentialStream::new(1.0 / 600.0, seed);
            let mut s2 = ExponentialStream::new(1.0 / 600.0, seed);
            let plain = simulate_dag_policy(
                &tasks,
                &order,
                20.0,
                12.0,
                &mut DagFlags(vec![true, false, true]),
                &mut s1,
            )
            .unwrap();
            let logged = simulate_dag_policy_with_log(
                &tasks,
                &order,
                20.0,
                12.0,
                &mut DagFlags(vec![true, false, true]),
                &mut s2,
            )
            .unwrap();
            assert_eq!(plain, logged.outcome, "seed {seed}");
        }
    }

    #[test]
    fn logged_and_plain_policy_runs_agree() {
        let tasks = vec![task(300.0, 30.0, 15.0), task(500.0, 25.0, 40.0), task(150.0, 10.0, 5.0)];
        for seed in 0..15u64 {
            let mut s1 = ExponentialStream::new(1.0 / 600.0, seed);
            let mut s2 = ExponentialStream::new(1.0 / 600.0, seed);
            let plain =
                simulate_policy(&tasks, 20.0, 12.0, &mut Flags(vec![true, false, true]), &mut s1)
                    .unwrap();
            let logged = simulate_policy_with_log(
                &tasks,
                20.0,
                12.0,
                &mut Flags(vec![true, false, true]),
                &mut s2,
            )
            .unwrap();
            assert_eq!(plain, logged.outcome, "seed {seed}");
        }
    }
}

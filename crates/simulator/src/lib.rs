//! Discrete-event Monte-Carlo simulator for checkpointed workflow execution
//! under stochastic failures.
//!
//! The simulator realises the execution model of the paper's §2 exactly:
//!
//! * the workflow is executed as a sequence of **segments**, each consisting of
//!   some work followed by an (optional) checkpoint;
//! * when a failure strikes during work, checkpointing or recovery, the
//!   platform first incurs a **downtime** `D` (during which failures cannot
//!   strike), then a **recovery** of the last checkpointed state (during which
//!   failures *can* strike), and then re-executes the interrupted segment from
//!   its beginning;
//! * the first segment recovers to the initial state with its own recovery
//!   cost `R₀` (re-reading inputs).
//!
//! Failures are supplied by a [`FailureStream`]: a platform-level Exponential
//! stream (the paper's model), the superposition of per-processor streams of
//! any law from `ckpt-failure`, or a recorded synthetic trace.
//!
//! Besides replaying **fixed** schedules, the simulator can drive **online**
//! checkpoint policies: [`policy::simulate_policy`] executes a chain task by
//! task and consults a [`Policy`] at every boundary ("checkpoint now or keep
//! going?"), logging the decisions; [`SimulationScenario::run_policy`] is
//! the matching Monte-Carlo driver (bit-identical at any thread count). The
//! concrete adaptive policies live in the `ckpt-adaptive` crate.
//!
//! The headline use is experiment E1: simulating a single segment and checking
//! the sample mean against the closed form of Proposition 1.
//!
//! # Example
//!
//! ```rust
//! use ckpt_simulator::{Segment, SimulationScenario};
//! use ckpt_expectation::exact::{expected_time, ExecutionParams};
//!
//! let lambda = 1.0 / 10_000.0;
//! let segment = Segment::new(3_600.0, 120.0, 60.0)?;
//! let scenario = SimulationScenario::exponential(lambda)
//!     .with_downtime(30.0)
//!     .with_trials(2_000)
//!     .with_seed(7);
//! let outcome = scenario.run(&[segment]);
//!
//! let params = ExecutionParams::new(3_600.0, 120.0, 30.0, 60.0, lambda)?;
//! let exact = expected_time(&params);
//! // The Monte-Carlo mean is within a few percent of Proposition 1.
//! assert!((outcome.makespan.mean - exact).abs() / exact < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod event_log;
pub mod levelled;
pub mod montecarlo;
pub mod policy;
pub mod rollback;
pub mod segment;
pub mod stream;
pub mod trace;

pub use engine::{simulate, ExecutionRecord, TimeBreakdown};
pub use error::SimulationError;
pub use event_log::{simulate_with_log, ExecutionEvent, LoggedExecution};
pub use levelled::levelled_segments;
pub use montecarlo::{
    scatter_trials, scatter_trials_with, DagPolicyMonteCarloOutcome, MonteCarloOutcome,
    PolicyMonteCarloOutcome, SimulationScenario,
};
pub use policy::{
    simulate_dag_policy, simulate_dag_policy_with_log, simulate_policy, simulate_policy_with_log,
    ChainTask, DagDecision, DagDecisionContext, DagPolicy, DagPolicyExecutionRecord,
    DagPolicyLoggedExecution, DecisionContext, Policy, PolicyExecutionRecord,
    PolicyLoggedExecution,
};
pub use segment::Segment;
pub use stream::{ExponentialStream, FailureStream, PlatformStream, TraceStream};
pub use trace::{execution_event_to_trace, replay_log};

//! Shared §2 rollback primitives.
//!
//! The chain policy engine ([`crate::policy::simulate_policy`]), the DAG
//! policy engine and the multi-machine cluster engine (`ckpt-cluster`) all
//! execute the same failure semantics: an interruptible *phase* (work,
//! checkpoint or recovery) either completes or is cut short by the first
//! failure of a [`FailureStream`]; a failure during work or checkpointing
//! loses the run back to the last durable checkpoint, costs a failure-free
//! downtime `D` and an interruptible recovery; a durable checkpoint commits
//! the run as useful time.
//!
//! These helpers keep the *exact* sequence of stream queries and
//! floating-point operations in one place, so independently written engines
//! degenerate to each other **bitwise**: the cluster engine's
//! single-machine/no-migration configuration replays [`simulate_policy`]
//! seed for seed because both call the same functions in the same order.
//!
//! [`simulate_policy`]: crate::policy::simulate_policy

use crate::engine::TimeBreakdown;
use crate::stream::FailureStream;

/// The outcome of one interruptible phase attempt (see [`run_phase`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseOutcome {
    /// The phase ran to completion; the clock was advanced past it.
    Completed,
    /// A failure struck at time `at`, strictly inside the phase; the clock
    /// was **not** advanced (failure bookkeeping decides where it goes).
    Failed {
        /// The failure instant.
        at: f64,
    },
}

/// Attempts one failure-prone phase of `duration` seconds starting at
/// `*clock`: queries the stream for the first failure strictly after the
/// current clock and compares it against the phase end.
///
/// On success the clock advances by `duration`; on failure it is left
/// untouched — callers account the failure with [`absorb_run_failure`] or
/// [`absorb_recovery_failure`], which set the post-downtime clock.
///
/// This is the single stream-consumption pattern of the §2 engines: one
/// query per attempt, `f < clock + duration` deciding the outcome.
pub fn run_phase<S: FailureStream + ?Sized>(
    stream: &mut S,
    clock: &mut f64,
    duration: f64,
) -> PhaseOutcome {
    match stream.next_failure_after(*clock) {
        Some(f) if f < *clock + duration => PhaseOutcome::Failed { at: f },
        _ => {
            *clock += duration;
            PhaseOutcome::Completed
        }
    }
}

/// Accounts a failure at `at` during **work or checkpointing**: everything
/// since `run_start` is lost, the failure is recorded, and the clock jumps
/// to the end of the failure-free downtime (`at + downtime`).
pub fn absorb_run_failure(
    at: f64,
    downtime: f64,
    clock: &mut f64,
    run_start: f64,
    failure_times: &mut Vec<f64>,
    breakdown: &mut TimeBreakdown,
) {
    breakdown.lost += at - run_start;
    failure_times.push(at);
    *clock = at + downtime;
    breakdown.downtime += downtime;
}

/// Accounts a failure at `at` during an **interruptible recovery**: the
/// partial recovery time is booked in the recovery bucket (nothing new was
/// lost — the run was already rolled back), the failure is recorded, and the
/// clock jumps to the end of the downtime, after which the recovery restarts
/// from scratch.
pub fn absorb_recovery_failure(
    at: f64,
    downtime: f64,
    clock: &mut f64,
    failure_times: &mut Vec<f64>,
    breakdown: &mut TimeBreakdown,
) {
    breakdown.recovery += at - *clock;
    failure_times.push(at);
    *clock = at + downtime;
    breakdown.downtime += downtime;
}

/// Commits the run ending at `clock` as useful time: a checkpoint became
/// durable, so everything since `*run_start` can no longer be lost.
pub fn commit_run(clock: f64, run_start: &mut f64, breakdown: &mut TimeBreakdown) {
    breakdown.useful += clock - *run_start;
    *run_start = clock;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{NoFailureStream, ScriptedStream};

    #[test]
    fn run_phase_completes_without_failures() {
        let mut clock = 10.0;
        assert_eq!(run_phase(&mut NoFailureStream, &mut clock, 5.0), PhaseOutcome::Completed);
        assert_eq!(clock, 15.0);
    }

    #[test]
    fn run_phase_reports_strictly_interior_failures() {
        // Failure at the exact phase end does not interrupt it (strict `<`).
        let mut s = ScriptedStream::new(vec![15.0, 18.0]);
        let mut clock = 10.0;
        assert_eq!(run_phase(&mut s, &mut clock, 5.0), PhaseOutcome::Completed);
        assert_eq!(clock, 15.0);
        assert_eq!(run_phase(&mut s, &mut clock, 5.0), PhaseOutcome::Failed { at: 18.0 });
        assert_eq!(clock, 15.0, "failure leaves the clock untouched");
    }

    #[test]
    fn failure_bookkeeping_matches_the_model() {
        let mut breakdown = TimeBreakdown::default();
        let mut failures = Vec::new();
        let mut clock = 0.0;
        absorb_run_failure(40.0, 5.0, &mut clock, 10.0, &mut failures, &mut breakdown);
        assert_eq!(breakdown.lost, 30.0);
        assert_eq!(breakdown.downtime, 5.0);
        assert_eq!(clock, 45.0);
        absorb_recovery_failure(52.0, 5.0, &mut clock, &mut failures, &mut breakdown);
        assert_eq!(breakdown.recovery, 7.0);
        assert_eq!(clock, 57.0);
        assert_eq!(failures, vec![40.0, 52.0]);
        let mut run_start = 45.0;
        commit_run(60.0, &mut run_start, &mut breakdown);
        assert_eq!(breakdown.useful, 15.0);
        assert_eq!(run_start, 60.0);
    }
}

//! The execution engine: plays a sequence of segments against a failure
//! stream, applying the §2 rollback-recovery semantics.

use crate::error::SimulationError;
use crate::segment::Segment;
use crate::stream::FailureStream;

/// Where the simulated time went, aggregated over one execution.
///
/// The four buckets partition the makespan exactly:
/// `makespan = useful + lost + downtime + recovery`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeBreakdown {
    /// Work and checkpoint time of attempts that completed successfully.
    pub useful: f64,
    /// Work and checkpoint time wasted in attempts interrupted by a failure.
    pub lost: f64,
    /// Total downtime (one `D` per failure, including failures during
    /// recovery).
    pub downtime: f64,
    /// Time spent recovering, including partial recoveries interrupted by
    /// further failures.
    pub recovery: f64,
}

impl TimeBreakdown {
    /// The sum of all buckets; equals the makespan of the execution.
    pub fn total(&self) -> f64 {
        self.useful + self.lost + self.downtime + self.recovery
    }
}

/// The outcome of simulating one complete execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutionRecord {
    /// Total wall-clock time of the execution.
    pub makespan: f64,
    /// Number of failures that struck during the execution (during work,
    /// checkpoint or recovery — failures "during downtime" do not exist in
    /// the model).
    pub failures: u64,
    /// Where the time went.
    pub breakdown: TimeBreakdown,
}

/// Simulates one execution of `segments` (in order) with downtime `downtime`,
/// drawing failures from `stream`.
///
/// Semantics (paper §2/§3):
///
/// 1. each segment is attempted as an atomic `work + checkpoint` block;
/// 2. a failure during the attempt costs the time elapsed in the attempt, then
///    a downtime `D` (failure-free by definition), then a recovery of the
///    segment's `recovery` cost;
/// 3. failures may strike during recovery, each costing the elapsed recovery
///    time plus another downtime, until a recovery completes;
/// 4. after a successful recovery the whole segment is re-attempted.
///
/// # Errors
///
/// * [`SimulationError::EmptySchedule`] if `segments` is empty;
/// * [`SimulationError::NegativeParameter`] if `downtime` is negative;
/// * [`SimulationError::TraceExhausted`] is **not** returned — an exhausted
///   stream means no more failures, so the execution simply completes.
pub fn simulate<S: FailureStream + ?Sized>(
    segments: &[Segment],
    downtime: f64,
    stream: &mut S,
) -> Result<ExecutionRecord, SimulationError> {
    if segments.is_empty() {
        return Err(SimulationError::EmptySchedule);
    }
    if !downtime.is_finite() || downtime < 0.0 {
        return Err(SimulationError::NegativeParameter { name: "downtime", value: downtime });
    }

    let mut clock = 0.0f64;
    let mut failures = 0u64;
    let mut breakdown = TimeBreakdown::default();

    for segment in segments {
        let attempt = segment.attempt_duration();
        loop {
            // Attempt the segment's work + checkpoint.
            match stream.next_failure_after(clock) {
                Some(failure_time) if failure_time < clock + attempt => {
                    // Failure during work or checkpoint.
                    failures += 1;
                    breakdown.lost += failure_time - clock;
                    clock = failure_time;
                    // Downtime: failure-free by definition.
                    breakdown.downtime += downtime;
                    clock += downtime;
                    // Recovery: may itself be interrupted.
                    perform_recovery(
                        segment.recovery(),
                        downtime,
                        stream,
                        &mut clock,
                        &mut failures,
                        &mut breakdown,
                    );
                    // Re-attempt the whole segment.
                }
                _ => {
                    // No failure before the attempt completes (or stream
                    // exhausted): the segment succeeds.
                    breakdown.useful += attempt;
                    clock += attempt;
                    break;
                }
            }
        }
    }

    Ok(ExecutionRecord { makespan: clock, failures, breakdown })
}

/// Performs (possibly repeatedly interrupted) recovery of cost `recovery`.
fn perform_recovery<S: FailureStream + ?Sized>(
    recovery: f64,
    downtime: f64,
    stream: &mut S,
    clock: &mut f64,
    failures: &mut u64,
    breakdown: &mut TimeBreakdown,
) {
    if recovery == 0.0 {
        return;
    }
    loop {
        match stream.next_failure_after(*clock) {
            Some(failure_time) if failure_time < *clock + recovery => {
                *failures += 1;
                breakdown.recovery += failure_time - *clock;
                *clock = failure_time;
                breakdown.downtime += downtime;
                *clock += downtime;
            }
            _ => {
                breakdown.recovery += recovery;
                *clock += recovery;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{NoFailureStream, ScriptedStream};

    fn seg(work: f64, ckpt: f64, rec: f64) -> Segment {
        Segment::new(work, ckpt, rec).unwrap()
    }

    #[test]
    fn empty_schedule_is_rejected() {
        let mut stream = NoFailureStream;
        assert!(matches!(simulate(&[], 0.0, &mut stream), Err(SimulationError::EmptySchedule)));
    }

    #[test]
    fn negative_downtime_is_rejected() {
        let mut stream = NoFailureStream;
        assert!(simulate(&[seg(1.0, 0.0, 0.0)], -1.0, &mut stream).is_err());
    }

    #[test]
    fn failure_free_execution_takes_nominal_time() {
        let mut stream = NoFailureStream;
        let segments = vec![seg(100.0, 10.0, 5.0), seg(200.0, 20.0, 10.0)];
        let record = simulate(&segments, 60.0, &mut stream).unwrap();
        assert_eq!(record.makespan, 330.0);
        assert_eq!(record.failures, 0);
        assert_eq!(record.breakdown.useful, 330.0);
        assert_eq!(record.breakdown.lost, 0.0);
        assert_eq!(record.breakdown.downtime, 0.0);
        assert_eq!(record.breakdown.recovery, 0.0);
    }

    #[test]
    fn single_failure_during_work_costs_lost_downtime_recovery() {
        // Segment: 100 s work + 10 s checkpoint, recovery 20 s, downtime 5 s.
        // Failure at t = 30: lose 30 s, 5 s downtime, 20 s recovery, then a
        // clean re-attempt of 110 s.  Makespan = 30 + 5 + 20 + 110 = 165.
        let mut stream = ScriptedStream::new(vec![30.0]);
        let record = simulate(&[seg(100.0, 10.0, 20.0)], 5.0, &mut stream).unwrap();
        assert_eq!(record.failures, 1);
        assert!((record.makespan - 165.0).abs() < 1e-12);
        assert!((record.breakdown.lost - 30.0).abs() < 1e-12);
        assert!((record.breakdown.downtime - 5.0).abs() < 1e-12);
        assert!((record.breakdown.recovery - 20.0).abs() < 1e-12);
        assert!((record.breakdown.useful - 110.0).abs() < 1e-12);
    }

    #[test]
    fn failure_during_checkpoint_also_rolls_back() {
        // Failure at t = 105, i.e. 5 s into the checkpoint.
        let mut stream = ScriptedStream::new(vec![105.0]);
        let record = simulate(&[seg(100.0, 10.0, 0.0)], 0.0, &mut stream).unwrap();
        // 105 lost + 110 useful.
        assert_eq!(record.failures, 1);
        assert!((record.makespan - 215.0).abs() < 1e-12);
    }

    #[test]
    fn failure_during_recovery_repeats_recovery() {
        // work 100, ckpt 0, recovery 50, downtime 10.
        // Failure at t = 20 -> lost 20, downtime 10 (t = 30), recovery starts.
        // Second failure at t = 60, i.e. 30 s into recovery -> recovery lost
        // 30, downtime 10 (t = 70), recovery completes at 120, then the
        // 100 s re-attempt finishes at 220.
        let mut stream = ScriptedStream::new(vec![20.0, 60.0]);
        let record = simulate(&[seg(100.0, 0.0, 50.0)], 10.0, &mut stream).unwrap();
        assert_eq!(record.failures, 2);
        assert!((record.makespan - 220.0).abs() < 1e-12);
        assert!((record.breakdown.recovery - 80.0).abs() < 1e-12);
        assert!((record.breakdown.downtime - 20.0).abs() < 1e-12);
        assert!((record.breakdown.lost - 20.0).abs() < 1e-12);
        assert!((record.breakdown.useful - 100.0).abs() < 1e-12);
    }

    #[test]
    fn failure_exactly_at_attempt_end_does_not_interrupt() {
        // Attempt covers [0, 110); failure at exactly 110 must not interrupt.
        let mut stream = ScriptedStream::new(vec![110.0]);
        let record = simulate(&[seg(100.0, 10.0, 0.0)], 0.0, &mut stream).unwrap();
        assert_eq!(record.failures, 0);
        assert!((record.makespan - 110.0).abs() < 1e-12);
    }

    #[test]
    fn failures_during_downtime_are_ignored() {
        // Failure at 10 interrupts; downtime is 100 (t in [10, 110]); a
        // scripted failure at 50 falls inside the downtime and must be
        // skipped, not charged. Recovery is 0, so the re-attempt starts at
        // 110 and runs 20 s; the next scripted failure is at 50 (already
        // past), so no further interruption.
        let mut stream = ScriptedStream::new(vec![10.0, 50.0]);
        let record = simulate(&[seg(20.0, 0.0, 0.0)], 100.0, &mut stream).unwrap();
        assert_eq!(record.failures, 1);
        assert!((record.makespan - 130.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_partitions_makespan() {
        let mut stream = ScriptedStream::new(vec![30.0, 60.0, 200.0, 500.0]);
        let segments = vec![seg(100.0, 10.0, 20.0), seg(150.0, 15.0, 25.0)];
        let record = simulate(&segments, 7.5, &mut stream).unwrap();
        assert!((record.breakdown.total() - record.makespan).abs() < 1e-9);
    }

    #[test]
    fn multi_segment_failure_only_replays_current_segment() {
        // Two segments of 100 s each (no checkpoints costs, no recovery).
        // A failure at t = 150 hits the second segment 50 s in: only those
        // 50 s are lost, not the first segment.
        let mut stream = ScriptedStream::new(vec![150.0]);
        let segments = vec![seg(100.0, 0.0, 0.0), seg(100.0, 0.0, 0.0)];
        let record = simulate(&segments, 0.0, &mut stream).unwrap();
        assert_eq!(record.failures, 1);
        assert!((record.makespan - 250.0).abs() < 1e-12);
        assert!((record.breakdown.lost - 50.0).abs() < 1e-12);
    }

    #[test]
    fn works_through_dyn_reference() {
        let mut stream: Box<dyn FailureStream> = Box::new(NoFailureStream);
        let record = simulate(&[seg(10.0, 1.0, 0.0)], 0.0, stream.as_mut()).unwrap();
        assert_eq!(record.makespan, 11.0);
    }
}

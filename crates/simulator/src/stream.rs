//! Failure streams: where the simulator's failures come from.
//!
//! The simulator only ever asks one question: *"when is the first failure
//! strictly after time `t`?"*. Three answers are provided:
//!
//! * [`ExponentialStream`] — a platform-level Exponential process of rate
//!   `λ = p·λ_proc`, the paper's model;
//! * [`PlatformStream`] — the superposition of per-processor streams of any
//!   law (Weibull, log-normal, mixtures), for the §6 extension;
//! * [`TraceStream`] — replay of a recorded or synthetic failure trace.

use ckpt_failure::{Exponential, FailureDistribution, Pcg64, PlatformFailureProcess, TraceReplay};

/// A source of platform-level failure instants.
///
/// Implementations return the first failure time strictly greater than
/// `after`, consuming the stream up to that point. `None` means the stream is
/// exhausted (only possible for finite traces) and no further failure will
/// ever occur.
pub trait FailureStream {
    /// The first failure strictly after `after`, or `None` if no failure will
    /// ever occur again.
    fn next_failure_after(&mut self, after: f64) -> Option<f64>;
}

/// Platform-level Exponential failure stream (the paper's §2 model).
#[derive(Debug, Clone)]
pub struct ExponentialStream {
    law: Exponential,
    rng: Pcg64,
    next: f64,
}

impl ExponentialStream {
    /// Creates a stream with platform rate `lambda`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite (construct the
    /// [`Exponential`] yourself to get a recoverable error).
    pub fn new(lambda: f64, seed: u64) -> Self {
        let law = Exponential::new(lambda).expect("lambda must be positive and finite");
        let mut rng = Pcg64::seed_from_u64(seed);
        let next = law.sample(&mut rng);
        ExponentialStream { law, rng, next }
    }

    /// The platform failure rate.
    pub fn lambda(&self) -> f64 {
        self.law.rate()
    }
}

impl FailureStream for ExponentialStream {
    fn next_failure_after(&mut self, after: f64) -> Option<f64> {
        // Advance the renewal process until the candidate lies after `after`.
        // Because the law is memoryless this is statistically identical to
        // resampling from `after`, but it keeps a single well-defined event
        // stream, which makes trials reproducible and comparable with the
        // per-processor and trace-based streams.
        while self.next <= after {
            self.next += self.law.sample(&mut self.rng);
        }
        Some(self.next)
    }
}

/// Failure stream backed by the superposition of per-processor processes.
///
/// The underlying [`PlatformFailureProcess`] consumes events as it advances,
/// but the simulator may ask about the same future failure several times
/// (e.g. a failure beyond the current attempt must still be visible to the
/// next attempt), so the stream caches the most recent candidate until the
/// caller has moved past it.
pub struct PlatformStream {
    process: PlatformFailureProcess,
    pending: Option<f64>,
}

impl std::fmt::Debug for PlatformStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformStream")
            .field("processors", &self.process.processor_count())
            .field("pending", &self.pending)
            .finish()
    }
}

impl PlatformStream {
    /// Wraps a [`PlatformFailureProcess`].
    pub fn new(process: PlatformFailureProcess) -> Self {
        PlatformStream { process, pending: None }
    }

    /// Builds a homogeneous platform of `p` processors following `law`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn homogeneous<D>(p: usize, law: D, seed: u64) -> Self
    where
        D: FailureDistribution + Clone + 'static,
    {
        PlatformStream {
            process: PlatformFailureProcess::homogeneous(p, law, seed)
                .expect("platform must have at least one processor"),
            pending: None,
        }
    }
}

impl FailureStream for PlatformStream {
    fn next_failure_after(&mut self, after: f64) -> Option<f64> {
        if let Some(pending) = self.pending {
            if pending > after {
                return Some(pending);
            }
        }
        let time = self.process.next_failure_after(after).time;
        self.pending = Some(time);
        Some(time)
    }
}

/// Failure stream backed by a recorded trace; exhausted when the trace ends.
///
/// Like [`PlatformStream`], the stream caches the most recent candidate so
/// that a failure lying beyond the current attempt remains visible to
/// subsequent attempts.
#[derive(Debug, Clone)]
pub struct TraceStream {
    replay: TraceReplay,
    pending: Option<f64>,
}

impl TraceStream {
    /// Wraps a trace replay cursor.
    pub fn new(replay: TraceReplay) -> Self {
        TraceStream { replay, pending: None }
    }
}

impl FailureStream for TraceStream {
    fn next_failure_after(&mut self, after: f64) -> Option<f64> {
        if let Some(pending) = self.pending {
            if pending > after {
                return Some(pending);
            }
        }
        let next = self.replay.next_after(after).map(|ev| ev.time);
        self.pending = next;
        next
    }
}

/// A stream that never fails — useful for failure-free baselines in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFailureStream;

impl FailureStream for NoFailureStream {
    fn next_failure_after(&mut self, _after: f64) -> Option<f64> {
        None
    }
}

/// A scripted stream for unit tests: failures at exactly the given times.
#[derive(Debug, Clone)]
pub struct ScriptedStream {
    times: Vec<f64>,
}

impl ScriptedStream {
    /// Creates a stream failing at exactly `times` (must be sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics if `times` is not sorted in non-decreasing order.
    pub fn new(times: Vec<f64>) -> Self {
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "scripted failure times must be sorted");
        ScriptedStream { times }
    }
}

impl FailureStream for ScriptedStream {
    fn next_failure_after(&mut self, after: f64) -> Option<f64> {
        self.times.iter().copied().find(|&t| t > after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_failure::{FailureEvent, FailureTrace, ProcessorId, Weibull};

    #[test]
    fn exponential_stream_is_monotone_and_deterministic() {
        let mut a = ExponentialStream::new(0.01, 3);
        let mut b = ExponentialStream::new(0.01, 3);
        let mut last = 0.0;
        for _ in 0..100 {
            let fa = a.next_failure_after(last).unwrap();
            let fb = b.next_failure_after(last).unwrap();
            assert_eq!(fa, fb);
            assert!(fa > last);
            last = fa;
        }
        assert!((a.lambda() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn exponential_stream_skips_failures_during_queries() {
        let mut s = ExponentialStream::new(0.1, 5);
        let far = s.next_failure_after(1000.0).unwrap();
        assert!(far > 1000.0);
        // Subsequent queries never go backwards.
        let later = s.next_failure_after(far).unwrap();
        assert!(later > far);
    }

    #[test]
    fn exponential_interarrival_mean_matches_rate() {
        let mut s = ExponentialStream::new(0.02, 11);
        let n = 50_000;
        let mut t = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = s.next_failure_after(t).unwrap();
            sum += f - t;
            t = f;
        }
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean inter-arrival {mean}");
    }

    #[test]
    fn platform_stream_works_with_weibull() {
        let law = Weibull::with_mean(0.7, 10_000.0).unwrap();
        let mut s = PlatformStream::homogeneous(16, law, 42);
        let f1 = s.next_failure_after(0.0).unwrap();
        let f2 = s.next_failure_after(f1).unwrap();
        assert!(f2 > f1);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn trace_stream_exhausts() {
        let trace = FailureTrace::new(
            1,
            vec![
                FailureEvent { time: 10.0, processor: ProcessorId(0) },
                FailureEvent { time: 20.0, processor: ProcessorId(0) },
            ],
        )
        .unwrap();
        let mut s = TraceStream::new(TraceReplay::new(trace));
        assert_eq!(s.next_failure_after(0.0), Some(10.0));
        assert_eq!(s.next_failure_after(15.0), Some(20.0));
        assert_eq!(s.next_failure_after(20.0), None);
    }

    #[test]
    fn no_failure_stream_never_fails() {
        let mut s = NoFailureStream;
        assert_eq!(s.next_failure_after(0.0), None);
        assert_eq!(s.next_failure_after(1e12), None);
    }

    #[test]
    fn scripted_stream_returns_exact_times() {
        let mut s = ScriptedStream::new(vec![5.0, 15.0, 30.0]);
        assert_eq!(s.next_failure_after(0.0), Some(5.0));
        assert_eq!(s.next_failure_after(5.0), Some(15.0));
        assert_eq!(s.next_failure_after(29.0), Some(30.0));
        assert_eq!(s.next_failure_after(30.0), None);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn scripted_stream_rejects_unsorted_times() {
        let _ = ScriptedStream::new(vec![5.0, 1.0]);
    }
}

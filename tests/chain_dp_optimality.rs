//! Cross-crate integration tests for Proposition 3 / Algorithm 1: the chain
//! dynamic program is optimal, its analytical value is confirmed by
//! simulation, and it dominates the periodic baselines.

use ckpt_bench::testgen::heterogeneous_chain_instance as random_chain_instance;
use ckpt_workflows::core::{brute_force, chain_dp, evaluate, heuristics, Schedule};
use ckpt_workflows::dag::properties;
use ckpt_workflows::simulator::SimulationScenario;

#[test]
fn dp_matches_exhaustive_search_on_random_chains() {
    for seed in 0..10 {
        let inst = random_chain_instance(seed, 7, 1.0 / 3_000.0);
        let dp = chain_dp::optimal_chain_schedule(&inst).unwrap();
        let brute = brute_force::optimal_schedule(&inst).unwrap();
        assert!(
            (dp.expected_makespan - brute.expected_makespan).abs() / brute.expected_makespan
                < 1e-10,
            "seed {seed}: dp {} vs brute {}",
            dp.expected_makespan,
            brute.expected_makespan
        );
    }
}

#[test]
fn dp_dominates_periodic_and_trivial_baselines() {
    for seed in 0..5 {
        for &lambda in &[1e-5, 1e-4, 1e-3] {
            let inst = random_chain_instance(100 + seed, 30, lambda);
            let dp = chain_dp::optimal_chain_schedule(&inst).unwrap();
            let order = properties::as_chain(inst.graph()).unwrap();

            let everywhere = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
            let final_only = Schedule::checkpoint_final_only(&inst, order.clone()).unwrap();
            let young = heuristics::young_periodic_schedule(&inst, order.clone()).unwrap();
            let every3 = heuristics::checkpoint_every_k(&inst, order, 3).unwrap();

            for (name, schedule) in [
                ("everywhere", &everywhere),
                ("final-only", &final_only),
                ("young-periodic", &young),
                ("every-3", &every3),
            ] {
                let value = evaluate::expected_makespan(&inst, schedule).unwrap();
                assert!(
                    dp.expected_makespan <= value + 1e-9,
                    "seed {seed}, lambda {lambda}: DP {} beaten by {name} {value}",
                    dp.expected_makespan
                );
            }
        }
    }
}

#[test]
fn dp_value_is_confirmed_by_simulation() {
    let inst = random_chain_instance(4242, 12, 1.0 / 6_000.0);
    let dp = chain_dp::optimal_chain_schedule(&inst).unwrap();
    let segments = dp.schedule.to_segments(&inst).unwrap();
    let outcome = SimulationScenario::exponential(inst.lambda())
        .with_downtime(inst.downtime())
        .with_trials(20_000)
        .with_seed(9)
        .run(&segments);
    let rel = outcome.makespan.relative_error(dp.expected_makespan);
    assert!(rel < 0.03, "relative error {rel:.4}");
}

#[test]
fn simulated_ranking_agrees_with_analytical_ranking() {
    // The analytical evaluator and the simulator must rank schedules the same
    // way when the gap is meaningful: the DP optimum must simulate at least as
    // fast as the single-final-checkpoint baseline under a harsh failure rate.
    // (Kept small: a no-checkpoint schedule needs e^{λW} attempts on average,
    // so the total work is chosen to keep that factor moderate.)
    let inst = random_chain_instance(777, 5, 1.0 / 2_500.0);
    let order = properties::as_chain(inst.graph()).unwrap();
    let dp = chain_dp::optimal_chain_schedule(&inst).unwrap();
    let final_only = Schedule::checkpoint_final_only(&inst, order).unwrap();

    let simulate = |schedule: &Schedule, seed: u64| {
        let segments = schedule.to_segments(&inst).unwrap();
        SimulationScenario::exponential(inst.lambda())
            .with_downtime(inst.downtime())
            .with_trials(4_000)
            .with_seed(seed)
            .run(&segments)
            .makespan
            .mean
    };
    let sim_dp = simulate(&dp.schedule, 1);
    let sim_final = simulate(&final_only, 1);
    assert!(sim_dp < sim_final, "DP simulated at {sim_dp:.1}, final-only at {sim_final:.1}");
}

#[test]
fn memoized_and_bottom_up_formulations_agree_on_large_chains() {
    let inst = random_chain_instance(31337, 200, 1.0 / 8_000.0);
    let bottom_up = chain_dp::optimal_chain_schedule(&inst).unwrap().expected_makespan;
    let memoized = chain_dp::optimal_chain_value_memoized(&inst).unwrap();
    assert!((bottom_up - memoized).abs() / bottom_up < 1e-12);
}

#[test]
fn scaling_solvers_agree_on_multi_block_chains() {
    // 5 000 tasks spans several of the blocked solver's cache-sized blocks;
    // the two O(n log n) formulations and the pruned quadratic must agree in
    // both a rare-failure and a frequent-failure regime.
    for lambda in [1e-7, 1e-4] {
        let inst = random_chain_instance(7, 5_000, lambda);
        let pruned = chain_dp::optimal_chain_schedule(&inst).unwrap();
        let dc = chain_dp::optimal_chain_schedule_divide_conquer(&inst).unwrap();
        let blocked = chain_dp::optimal_chain_schedule_blocked(&inst).unwrap();
        for (name, value) in
            [("divide_conquer", dc.expected_makespan), ("blocked", blocked.expected_makespan)]
        {
            let gap = (value - pruned.expected_makespan).abs() / pruned.expected_makespan;
            assert!(
                gap < 1e-10,
                "λ {lambda}: {name} {value} vs pruned {}",
                pruned.expected_makespan
            );
        }
    }
}

#[test]
fn batched_lambda_sweep_agrees_with_per_rate_planning() {
    use ckpt_workflows::core::analysis;

    let inst = random_chain_instance(11, 40, 1e-4);
    let sweep = analysis::lambda_sweep(&inst, 1e-6, 1e-3, 6).unwrap();
    for point in &sweep {
        let solo = chain_dp::optimal_chain_schedule(&inst.with_lambda(point.lambda).unwrap())
            .unwrap()
            .expected_makespan;
        assert!((point.expected_makespan - solo).abs() / solo < 1e-12, "λ {}", point.lambda);
    }
    // Evaluating the optimal schedule of each grid rate at its own rate
    // through the batched fixed-schedule sweep reproduces the optimum.
    let mid = &sweep[3];
    let schedule =
        chain_dp::optimal_chain_schedule(&inst.with_lambda(mid.lambda).unwrap()).unwrap().schedule;
    let fixed = analysis::schedule_lambda_sweep(&inst, &schedule, &[mid.lambda]).unwrap();
    assert!((fixed[0] - mid.expected_makespan).abs() / mid.expected_makespan < 1e-12);
}

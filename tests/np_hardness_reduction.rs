//! Cross-crate integration tests for Proposition 2: the 3-PARTITION reduction
//! behaves exactly as the proof describes — YES instances reach the bound `K`,
//! NO instances cannot, and the equivalence is constructive in both
//! directions.

use ckpt_workflows::core::three_partition::ThreePartitionInstance;
use ckpt_workflows::core::{brute_force, evaluate, heuristics};

#[test]
fn yes_instances_reach_the_bound_and_no_instances_do_not() {
    // Certified YES instance (n = 2, T = 100).
    let yes = ThreePartitionInstance::new(vec![30, 35, 35, 26, 33, 41], 100).unwrap();
    let red_yes = yes.reduce().unwrap();
    let best_yes = brute_force::optimal_schedule(&red_yes.instance).unwrap();
    assert!(
        (best_yes.expected_makespan - red_yes.bound).abs() / red_yes.bound < 1e-9,
        "YES optimum {} should equal K {}",
        best_yes.expected_makespan,
        red_yes.bound
    );

    // Certified NO instance (no triple sums to 100).
    let no = ThreePartitionInstance::new(vec![26, 26, 26, 40, 41, 41], 100).unwrap();
    assert!(no.solve_exact().unwrap().is_none());
    let red_no = no.reduce().unwrap();
    let best_no = brute_force::optimal_schedule(&red_no.instance).unwrap();
    assert!(
        best_no.expected_makespan > red_no.bound * (1.0 + 1e-9),
        "NO optimum {} should exceed K {}",
        best_no.expected_makespan,
        red_no.bound
    );
}

#[test]
fn reduction_roundtrip_recovers_a_partition_from_an_optimal_schedule() {
    for seed in 0..4 {
        let instance = ThreePartitionInstance::generate_yes(2, 96, seed).unwrap();
        let reduction = instance.reduce().unwrap();
        let best = brute_force::optimal_schedule(&reduction.instance).unwrap();
        // The optimal schedule of a YES instance meets K, so a partition can
        // be read back from its checkpointed groups.
        let partition = instance
            .partition_from_schedule(&reduction, &best.schedule)
            .unwrap()
            .expect("YES instance optimum must certify a partition");
        assert_eq!(partition.len(), instance.subset_count());
        for group in &partition {
            let sum: u64 = group.iter().map(|&i| instance.values()[i]).sum();
            assert_eq!(sum, instance.target());
        }
    }
}

#[test]
fn partition_and_schedule_directions_are_consistent() {
    let instance = ThreePartitionInstance::generate_yes(3, 120, 99).unwrap();
    let reduction = instance.reduce().unwrap();
    let partition = instance.solve_exact().unwrap().expect("generated YES");
    // Partition -> schedule meets the bound.
    let schedule = instance.schedule_from_partition(&reduction, &partition).unwrap();
    let value = evaluate::expected_makespan(&reduction.instance, &schedule).unwrap();
    assert!((value - reduction.bound).abs() / reduction.bound < 1e-9);
    // Schedule -> partition extracts groups of weight exactly T.
    let recovered = instance
        .partition_from_schedule(&reduction, &schedule)
        .unwrap()
        .expect("bound met, partition must be recoverable");
    assert_eq!(recovered.len(), 3);
}

#[test]
fn heuristic_gets_close_to_the_bound_on_reduced_instances() {
    // The reduced instances are exactly the hard ones; the practical heuristic
    // should still land within a few percent of K on small YES instances.
    let instance = ThreePartitionInstance::generate_yes(3, 200, 7).unwrap();
    let reduction = instance.reduce().unwrap();
    let heuristic = heuristics::independent_tasks_heuristic(&reduction.instance, 200).unwrap();
    let gap = heuristic.expected_makespan / reduction.bound;
    assert!(gap >= 1.0 - 1e-9, "heuristic cannot beat the bound");
    assert!(gap < 1.05, "heuristic gap {gap:.4} too large");
}

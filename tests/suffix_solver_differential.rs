//! Cross-solver differential property test (ISSUE 5 satellite): the online
//! re-planning primitive [`ResumableDp::solve_suffix`] against the full
//! table-level solvers on **blocked-scale** tables.
//!
//! The existing suffix-solve proptests stop below the
//! `scalable_placement_on_table` dispatch threshold (1024 positions), so
//! the blocked divide-and-conquer core was never cross-checked against the
//! suffix solver. These tests build tables with n > 1024 positions:
//!
//! * a full [`ResumableDp::solve`] must agree with
//!   `scalable_placement_on_table` (which dispatches to the blocked solver
//!   at this size) to 1e-10 relative;
//! * a fresh `solve_suffix(table, from)` at a random suffix start must be
//!   **bitwise** equal to the matching positions of the full pruned solve
//!   (same recurrence, same span);
//! * re-solving the suffix as a standalone sub-table (sliced positional
//!   vectors — the protecting-recovery convention makes the slice exactly
//!   the suffix problem) through `scalable_placement_on_table` must agree
//!   to 1e-10 relative, including sub-tables that are themselves above the
//!   blocked dispatch threshold.

use ckpt_workflows::core::chain_dp::{scalable_placement_on_table, ResumableDp};
use ckpt_workflows::expectation::segment_cost::SegmentCostTable;
use ckpt_workflows::failure::{Pcg64, RandomSource};
use proptest::prelude::*;

/// A deterministic heterogeneous positional-cost table of `n` positions.
fn random_table(seed: u64, n: usize, lambda: f64) -> SegmentCostTable {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| 50.0 + rng.next_f64() * 1_950.0).collect();
    let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 250.0).collect();
    let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 400.0).collect();
    SegmentCostTable::new(lambda, 30.0, &weights, &ckpt, &rec).unwrap()
}

/// The sliced sub-table of positions `from..n`: under the
/// protecting-recovery convention the slice IS the standalone suffix
/// problem (position `from`'s protecting recovery becomes the sub `R₀`).
fn suffix_table(seed: u64, n: usize, lambda: f64, from: usize) -> SegmentCostTable {
    let mut rng = Pcg64::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n).map(|_| 50.0 + rng.next_f64() * 1_950.0).collect();
    let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 250.0).collect();
    let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 400.0).collect();
    SegmentCostTable::new(lambda, 30.0, &weights[from..], &ckpt[from..], &rec[from..]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_suffix_solver_agrees_with_blocked_scale_full_solvers(
        seed in any::<u64>(),
        extra in 0usize..400,
        from_frac in 0.0f64..0.95,
        lambda_exp in -5.0f64..-3.6,
    ) {
        // n > 1024 so `scalable_placement_on_table` dispatches to the
        // blocked divide-and-conquer core.
        let n = 1_100 + extra;
        let lambda = 10f64.powf(lambda_exp);
        let table = random_table(seed, n, lambda);

        // Full solves: blocked dispatch vs the pruned recurrence.
        let blocked = scalable_placement_on_table(&table);
        let mut dp = ResumableDp::new();
        let pruned_value = dp.solve(&table);
        let gap = (blocked.expected_makespan - pruned_value).abs() / pruned_value;
        prop_assert!(gap < 1e-10, "full solve: blocked {} vs pruned {}", blocked.expected_makespan, pruned_value);

        // Random suffix start: a fresh suffix-only solve must be bitwise
        // the matching positions of the full pruned solve.
        let from = ((n as f64 * from_frac) as usize).min(n - 1);
        let mut fresh = ResumableDp::new();
        let suffix_value = fresh.solve_suffix(&table, from);
        prop_assert!(suffix_value == dp.suffix_value(from),
            "suffix value at {}: {} vs full {}", from, suffix_value, dp.suffix_value(from));
        for x in from..n {
            prop_assert!(fresh.suffix_value(x) == dp.suffix_value(x),
                "value[{}] differs", x);
            prop_assert!(fresh.choice_at(x) == dp.choice_at(x),
                "choice[{}] differs", x);
        }

        // The standalone sub-table of the suffix, solved through the
        // scalable dispatch, agrees with the suffix solve.
        let sub = suffix_table(seed, n, lambda, from);
        let sub_solved = scalable_placement_on_table(&sub);
        let gap = (sub_solved.expected_makespan - suffix_value).abs() / suffix_value.max(1.0);
        prop_assert!(gap < 1e-10,
            "sub-table at {}: {} vs suffix {}", from, sub_solved.expected_makespan, suffix_value);
    }
}

/// A deterministic case whose suffix itself crosses the 1024-position
/// dispatch threshold, so the sub-table comparison exercises the blocked
/// solver on both sides.
#[test]
fn suffix_above_dispatch_threshold_agrees_with_blocked_sub_table() {
    let (seed, n, lambda, from) = (0xD1FF_u64, 2_000usize, 1e-4, 17usize);
    let table = random_table(seed, n, lambda);
    let mut dp = ResumableDp::new();
    let suffix_value = dp.solve_suffix(&table, from);
    let sub = suffix_table(seed, n, lambda, from);
    assert!(sub.len() > 1024, "sub-table must cross the blocked dispatch threshold");
    let sub_solved = scalable_placement_on_table(&sub);
    let gap = (sub_solved.expected_makespan - suffix_value).abs() / suffix_value;
    assert!(gap < 1e-10, "blocked sub {} vs suffix {}", sub_solved.expected_makespan, suffix_value);
    // The placements agree position for position (offset by `from`).
    let mut fresh = ResumableDp::new();
    fresh.solve(&sub);
    let sub_positions = fresh.placement().checkpoint_positions;
    let mut walked = Vec::new();
    let mut x = from;
    while x < n {
        let j = dp.choice_at(x);
        walked.push(j - from);
        x = j + 1;
    }
    assert_eq!(walked, sub_positions, "suffix placement differs from the sub-table solve");
}

//! End-to-end integration tests exercising the full stack the way the
//! examples do: DAG generators → instances → scheduling → analytical
//! evaluation → Monte-Carlo simulation, including the §6 extensions.

use ckpt_workflows::core::cost_model::CheckpointCostModel;
use ckpt_workflows::core::moldable::{plan_moldable_chain, MoldableTask};
use ckpt_workflows::core::{chain_dp, dag_schedule, evaluate, general_failures, ProblemInstance};
use ckpt_workflows::dag::{generators, properties, LinearizationStrategy};
use ckpt_workflows::expectation::overhead::{OverheadModel, ScalingScenario};
use ckpt_workflows::expectation::workload::WorkloadModel;
use ckpt_workflows::failure::{TraceGenerator, TraceReplay, Weibull};
use ckpt_workflows::simulator::{simulate, TraceStream};

#[test]
fn fork_join_workflow_schedules_and_simulates_end_to_end() {
    let graph =
        generators::fork_join(4, &[1_800.0, 2_400.0, 900.0, 3_000.0], 300.0, 600.0).unwrap();
    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(90.0)
        .uniform_recovery_cost(120.0)
        .downtime(45.0)
        .platform_lambda(1.0 / 4_000.0)
        .build()
        .unwrap();

    let solution =
        dag_schedule::schedule_dag_best_of(&instance, CheckpointCostModel::PerLastTask, 8).unwrap();
    assert_eq!(solution.schedule.len(), 6);

    // The analytical value is confirmed by simulation.
    let segments = solution.schedule.to_segments(&instance).unwrap();
    let outcome = ckpt_workflows::simulator::SimulationScenario::exponential(instance.lambda())
        .with_downtime(instance.downtime())
        .with_trials(15_000)
        .with_seed(3)
        .run(&segments);
    assert!(outcome.makespan.relative_error(solution.expected_makespan) < 0.03);
}

#[test]
fn live_set_cost_model_changes_schedules_only_on_non_chains() {
    // Chain: identical schedules under every cost model (§6 remark).
    let chain = generators::chain(&[500.0, 1_500.0, 800.0, 2_000.0]).unwrap();
    let chain_inst = ProblemInstance::builder(chain)
        .checkpoint_costs(vec![50.0, 200.0, 80.0, 20.0])
        .recovery_costs(vec![75.0, 300.0, 120.0, 30.0])
        .platform_lambda(1.0 / 3_000.0)
        .build()
        .unwrap();
    let base = dag_schedule::schedule_dag(
        &chain_inst,
        LinearizationStrategy::IdOrder,
        CheckpointCostModel::PerLastTask,
    )
    .unwrap();
    let live = dag_schedule::schedule_dag(
        &chain_inst,
        LinearizationStrategy::IdOrder,
        CheckpointCostModel::LiveSetSum,
    )
    .unwrap();
    assert_eq!(base.schedule, live.schedule);

    // Fork-join: the live-set model sees bigger checkpoints at wide points, so
    // its model-value is at least the per-task one.
    let fj = generators::fork_join(3, &[1_000.0, 1_000.0, 1_000.0], 200.0, 200.0).unwrap();
    let fj_inst = ProblemInstance::builder(fj)
        .uniform_checkpoint_cost(100.0)
        .uniform_recovery_cost(100.0)
        .platform_lambda(1.0 / 2_000.0)
        .build()
        .unwrap();
    let per_task = dag_schedule::schedule_dag(
        &fj_inst,
        LinearizationStrategy::IdOrder,
        CheckpointCostModel::PerLastTask,
    )
    .unwrap();
    let live_sum = dag_schedule::schedule_dag(
        &fj_inst,
        LinearizationStrategy::IdOrder,
        CheckpointCostModel::LiveSetSum,
    )
    .unwrap();
    assert!(
        live_sum.expected_makespan_under_model >= per_task.expected_makespan_under_model - 1e-9
    );
}

#[test]
fn weibull_planning_pipeline_runs_end_to_end() {
    let graph = generators::uniform_chain(8, 1_500.0).unwrap();
    let processors = 32;
    let proc_mtbf = 150_000.0;
    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(100.0)
        .uniform_recovery_cost(150.0)
        .downtime(30.0)
        .platform_lambda(processors as f64 / proc_mtbf)
        .build()
        .unwrap();
    let law = Weibull::with_mean(0.7, proc_mtbf).unwrap();

    let exp_plan =
        general_failures::exponential_equivalent_schedule(&instance, &law, processors).unwrap();
    let greedy =
        general_failures::work_before_failure_schedule(&instance, &law, processors).unwrap();

    for schedule in [&exp_plan, &greedy] {
        let outcome =
            general_failures::simulate_under_law(&instance, schedule, law, processors, 2_000, 17)
                .unwrap();
        assert!(outcome.makespan.mean >= schedule.failure_free_makespan(&instance));
    }
}

#[test]
fn trace_replay_of_an_optimal_schedule_completes() {
    let graph = generators::uniform_chain(6, 2_000.0).unwrap();
    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(60.0)
        .uniform_recovery_cost(90.0)
        .downtime(30.0)
        .platform_lambda(16.0 / 100_000.0)
        .build()
        .unwrap();
    let solution = chain_dp::optimal_chain_schedule(&instance).unwrap();
    let segments = solution.schedule.to_segments(&instance).unwrap();

    // Generate a synthetic Weibull trace long enough to cover the execution.
    let law = Weibull::with_mean(0.6, 100_000.0).unwrap();
    let trace = TraceGenerator::new(16, 11).unwrap().generate(law, 40.0 * instance.total_weight());
    let mut stream = TraceStream::new(TraceReplay::new(trace));
    let record = simulate(&segments, instance.downtime(), &mut stream).unwrap();
    assert!(record.makespan >= solution.schedule.failure_free_makespan(&instance));
    assert!((record.breakdown.total() - record.makespan).abs() < 1e-6);
}

#[test]
fn moldable_plan_respects_workload_and_overhead_models() {
    let scenario = ScalingScenario {
        lambda_proc: 1.0 / (3.0 * 365.0 * 86_400.0),
        base_checkpoint: 300.0,
        base_recovery: 300.0,
        downtime: 30.0,
        workload: WorkloadModel::amdahl(0.05).unwrap(),
        overhead: OverheadModel::Constant,
    };
    let tasks: Vec<MoldableTask> =
        [5e5, 2e6, 1e6].iter().map(|&w| MoldableTask::new(w).unwrap()).collect();
    let plan = plan_moldable_chain(&tasks, &scenario, 2_048).unwrap();
    assert_eq!(plan.allocations.len(), 3);
    // Every chosen allocation is at least as good as running sequentially.
    for (task, alloc) in tasks.iter().zip(plan.allocations.iter()) {
        let sequential =
            ckpt_workflows::core::moldable::expected_time_on(*task, &scenario, 1).unwrap();
        assert!(alloc.expected_time <= sequential + 1e-9);
    }
}

#[test]
fn chain_dp_handles_heterogeneous_pipelines_from_the_genomics_example() {
    // The genomics example's configuration, checked as a regression test:
    // the optimal placement always checkpoints the expensive-to-recompute
    // alignment stage once failures are frequent enough.
    let durations = [1_200.0, 14_400.0, 2_700.0, 10_800.0, 1_800.0, 600.0];
    let graph = generators::chain(&durations).unwrap();
    let instance = ProblemInstance::builder(graph)
        .checkpoint_costs(vec![20.0, 600.0, 450.0, 120.0, 60.0, 10.0])
        .recovery_costs(vec![30.0, 900.0, 600.0, 180.0, 90.0, 15.0])
        .downtime(120.0)
        .platform_lambda(1.0 / 10_000.0)
        .build()
        .unwrap();
    let solution = chain_dp::optimal_chain_schedule(&instance).unwrap();
    assert!(solution.checkpoint_positions.contains(&1), "alignment stage must be checkpointed");
    assert!(properties::is_chain(instance.graph()));
    // And the value is confirmed by the analytical evaluator.
    let eval = evaluate::expected_makespan(&instance, &solution.schedule).unwrap();
    assert!((eval - solution.expected_makespan).abs() < 1e-9);
}

//! Cross-crate property test of the §6 live-set cost models: the
//! incremental `O(n + E)` sweep ([`CheckpointCostModel::costs_along_order`])
//! must match the recomputing reference path position by position on random
//! layered DAGs.
//!
//! Migrated from `ckpt-core`'s `cost_model::sweep_properties` unit tests
//! when the random-instance generator moved to the shared
//! [`ckpt_bench::testgen`] module (a unit test inside `ckpt-core` cannot
//! consume `ckpt-bench` types without seeing two distinct compilations of
//! its own crate).

use ckpt_bench::testgen::random_layered_proptest_case as random_dag_case;
use ckpt_workflows::core::cost_model::CheckpointCostModel;
use proptest::prelude::*;

const ALL_MODELS: [CheckpointCostModel; 3] = [
    CheckpointCostModel::PerLastTask,
    CheckpointCostModel::LiveSetSum,
    CheckpointCostModel::LiveSetMax,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_incremental_matches_recomputing_path(seed in any::<u64>()) {
        let (inst, order) = random_dag_case(seed);
        for model in ALL_MODELS {
            let (ckpt, rec) = model.costs_along_order(&inst, &order);
            prop_assert_eq!(ckpt.len(), order.len());
            for pos in 0..order.len() {
                let c_ref = model.checkpoint_cost(&inst, &order, pos);
                let r_ref = model.recovery_cost(&inst, &order, pos);
                match model {
                    // Max and per-task never do arithmetic on the
                    // costs: bitwise equality is required.
                    CheckpointCostModel::PerLastTask
                    | CheckpointCostModel::LiveSetMax => {
                        prop_assert!(ckpt[pos] == c_ref, "{} ckpt at {}", model, pos);
                        prop_assert!(rec[pos] == r_ref, "{} rec at {}", model, pos);
                    }
                    // The running sum re-associates the additions, so
                    // it may differ from the fresh sum by rounding
                    // only.
                    CheckpointCostModel::LiveSetSum => {
                        prop_assert!((ckpt[pos] - c_ref).abs() <= 1e-12 * c_ref.abs().max(1.0),
                            "sum ckpt at {}: {} vs {}", pos, ckpt[pos], c_ref);
                        prop_assert!((rec[pos] - r_ref).abs() <= 1e-12 * r_ref.abs().max(1.0),
                            "sum rec at {}: {} vs {}", pos, rec[pos], r_ref);
                    }
                }
            }
        }
    }
}

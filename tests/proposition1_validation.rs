//! Cross-crate integration tests for Proposition 1: the closed-form expected
//! execution time must agree with the discrete-event simulator across a broad
//! parameter sweep, and must dominate/beat the related-work formulas exactly
//! as §3 claims.

use ckpt_workflows::expectation::approximations::{
    bouguerra_expected_time, first_order_expected_time,
};
use ckpt_workflows::expectation::exact::{expected_time, ExecutionParams};
use ckpt_workflows::failure::Exponential;
use ckpt_workflows::simulator::{Segment, SimulationScenario};

#[test]
fn formula_matches_simulation_across_parameter_sweep() {
    // A coarse version of experiment E1: for each configuration the
    // Monte-Carlo mean must fall within 3% of the closed form (and within the
    // 95% CI most of the time — we check the looser bound to keep the test
    // deterministic and fast).
    let configs = [
        // (W, C, D, R, platform MTBF)
        (3_600.0, 60.0, 0.0, 60.0, 86_400.0),
        (3_600.0, 600.0, 60.0, 600.0, 21_600.0),
        (900.0, 120.0, 30.0, 240.0, 7_200.0),
        (10_000.0, 300.0, 0.0, 300.0, 20_000.0),
        (500.0, 30.0, 10.0, 45.0, 2_000.0),
    ];
    for (i, &(w, c, d, r, mtbf)) in configs.iter().enumerate() {
        let lambda = 1.0 / mtbf;
        let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
        let outcome = SimulationScenario::exponential(lambda)
            .with_downtime(d)
            .with_trials(30_000)
            .with_seed(1_000 + i as u64)
            .run(&[Segment::new(w, c, r).unwrap()]);
        let rel = outcome.makespan.relative_error(exact);
        assert!(
            rel < 0.03,
            "config {i}: relative error {rel:.4} (simulated {:.1}, exact {exact:.1})",
            outcome.makespan.mean
        );
    }
}

#[test]
fn formula_matches_simulation_with_per_processor_streams() {
    // The same validation with failures generated per processor and
    // superposed, instead of a single platform-level stream: for Exponential
    // laws the two must agree (λ = p·λ_proc).
    let p = 32;
    let proc_mtbf = 200_000.0;
    let lambda = p as f64 / proc_mtbf;
    let (w, c, d, r) = (5_000.0, 250.0, 60.0, 400.0);
    let exact = expected_time(&ExecutionParams::new(w, c, d, r, lambda).unwrap());
    let outcome = SimulationScenario::platform(p, Exponential::from_mtbf(proc_mtbf).unwrap())
        .with_downtime(d)
        .with_trials(20_000)
        .with_seed(77)
        .run(&[Segment::new(w, c, r).unwrap()]);
    let rel = outcome.makespan.relative_error(exact);
    assert!(rel < 0.03, "relative error {rel:.4}");
}

#[test]
fn bouguerra_formula_is_biased_upward_and_daly_first_order_downward() {
    // §3's positioning of Proposition 1 against related work: the Bouguerra
    // et al. value charges an extra recovery and therefore overestimates;
    // the first-order expansion underestimates once failures are frequent.
    let params = ExecutionParams::new(7_200.0, 600.0, 60.0, 600.0, 1.0 / 10_000.0).unwrap();
    let exact = expected_time(&params);
    assert!(bouguerra_expected_time(&params) > exact);
    assert!(first_order_expected_time(&params) < exact);

    // And the simulation sides with Proposition 1, not with the comparators.
    let outcome = SimulationScenario::exponential(params.lambda())
        .with_downtime(params.downtime())
        .with_trials(40_000)
        .with_seed(5)
        .run(&[Segment::new(params.work(), params.checkpoint(), params.recovery()).unwrap()]);
    let err_exact = outcome.makespan.relative_error(exact);
    let err_bouguerra = outcome.makespan.relative_error(bouguerra_expected_time(&params));
    assert!(
        err_exact < err_bouguerra,
        "exact error {err_exact:.4} should beat Bouguerra error {err_bouguerra:.4}"
    );
}

#[test]
fn expectation_is_additive_over_segments() {
    // Memorylessness makes segment expectations additive; the simulator must
    // agree when executing several segments back to back.
    let lambda = 1.0 / 5_000.0;
    let d = 30.0;
    let segments = [
        Segment::new(1_200.0, 90.0, 0.0).unwrap(),
        Segment::new(2_500.0, 120.0, 60.0).unwrap(),
        Segment::new(800.0, 45.0, 90.0).unwrap(),
        Segment::new(3_200.0, 150.0, 30.0).unwrap(),
    ];
    let analytical: f64 = segments
        .iter()
        .map(|s| {
            expected_time(
                &ExecutionParams::new(s.work(), s.checkpoint(), d, s.recovery(), lambda).unwrap(),
            )
        })
        .sum();
    let outcome = SimulationScenario::exponential(lambda)
        .with_downtime(d)
        .with_trials(30_000)
        .with_seed(11)
        .run(&segments);
    assert!(outcome.makespan.relative_error(analytical) < 0.03);
}

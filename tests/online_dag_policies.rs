//! Differential tests backing the online DAG tier (ISSUE 5 satellite):
//!
//! 1. with **no failures**, `DagRelinearise` never re-plans and replays the
//!    offline `schedule_dag_search` plan **bitwise** (same order, same
//!    checkpoint positions, same execution record);
//! 2. `DagStaticPlan` through the policy-driven DAG engine reproduces the
//!    **fixed-schedule** evaluation seed for seed (same failure streams ⇒
//!    same failure counts, makespans and time breakdowns);
//! 3. the DAG policy Monte-Carlo comparison is **bit-identical at any
//!    thread count** (1 vs 2/3/8) on random layered DAGs — gated to the
//!    `--release` CI pass, like every DAG Monte-Carlo test (too slow in
//!    debug).

use ckpt_bench::testgen::random_layered_instance;
use ckpt_workflows::adaptive::{
    compare_dag_policies, optimal_static_dag_plan, DagPlan, DagRelinearise, DagSpec, DagStaticPlan,
    EvaluationConfig, TruthModel,
};
use ckpt_workflows::core::cost_model::CheckpointCostModel;
use ckpt_workflows::core::order_search::{schedule_dag_search, OrderSearchConfig};
use ckpt_workflows::core::Schedule;
use ckpt_workflows::dag::TaskId;
use ckpt_workflows::simulator::stream::{ExponentialStream, NoFailureStream};
use ckpt_workflows::simulator::{
    simulate, simulate_dag_policy, simulate_dag_policy_with_log, ExecutionEvent,
};
use proptest::prelude::*;

/// A heterogeneous layered DAG spec under the per-last-task model (the
/// model whose planning objective equals the execution costs, so plan
/// values are directly comparable to simulated makespans).
fn layered_spec(seed: u64) -> DagSpec {
    let instance =
        random_layered_instance(seed, &[2, 4, 3, 4, 2], 0.4, 150.0, 1_000.0, 150.0, 1e-4);
    DagSpec::new(instance, CheckpointCostModel::PerLastTask).unwrap()
}

fn quick_search() -> OrderSearchConfig {
    OrderSearchConfig { restarts: 2, steps: 64, threads: 1, ..Default::default() }
}

fn plan_at(spec: &DagSpec, rate: f64) -> DagPlan {
    optimal_static_dag_plan(spec, rate, &quick_search()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite property 1: a failure-free `DagRelinearise` run IS the
    /// offline `schedule_dag_search` plan, bitwise.
    #[test]
    fn prop_no_failure_relinearise_equals_offline_search_plan(
        seed in any::<u64>(),
        rate_exp in -5.5f64..-3.5,
    ) {
        let spec = layered_spec(seed);
        let rate = 10f64.powf(rate_exp);
        let plan = plan_at(&spec, rate);

        // The plan really is the offline search result (same pipeline).
        let offline = schedule_dag_search(
            &spec.instance().with_lambda(rate).unwrap(),
            spec.model(),
            &quick_search(),
        )
        .unwrap();
        prop_assert_eq!(offline.solution.schedule.order(), &plan.order[..]);
        prop_assert_eq!(offline.solution.schedule.checkpoint_after(), &plan.checkpoint_after[..]);

        // Policy run on a failure-free stream.
        let mut policy = DagRelinearise::new(&spec, &plan, rate).unwrap();
        let logged = simulate_dag_policy_with_log(
            spec.tasks(),
            &plan.order_indices(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut policy,
            &mut NoFailureStream,
        )
        .unwrap();
        prop_assert_eq!(policy.replans(), 0);
        prop_assert_eq!(policy.reorders(), 0);
        prop_assert_eq!(logged.outcome.reorders, 0);
        prop_assert_eq!(&logged.outcome.final_order, &plan.order_indices());

        // Checkpoint positions taken == the plan's, bitwise.
        let taken: Vec<usize> = logged
            .events
            .iter()
            .filter_map(|e| match *e {
                ExecutionEvent::SegmentCompleted { segment, .. } => Some(segment),
                _ => None,
            })
            .collect();
        let planned: Vec<usize> = plan
            .checkpoint_after
            .iter()
            .enumerate()
            .filter_map(|(p, &c)| c.then_some(p))
            .collect();
        prop_assert_eq!(&taken, &planned);

        // And the record equals replaying the plan statically, bitwise.
        let mut static_policy = DagStaticPlan::from_plan(&plan);
        let reference = simulate_dag_policy(
            spec.tasks(),
            &plan.order_indices(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut static_policy,
            &mut NoFailureStream,
        )
        .unwrap();
        prop_assert_eq!(logged.outcome.record, reference.record);
    }

    /// Satellite property 2: `DagStaticPlan` replay through the DAG policy
    /// engine reproduces the fixed-schedule evaluation of the same plan
    /// seed for seed.
    #[test]
    fn prop_static_replay_matches_fixed_schedule_engine(
        seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let spec = layered_spec(seed);
        let rate = 1.0 / 2_500.0;
        let plan = plan_at(&spec, rate);

        // The fixed-schedule view of the same plan.
        let order_ids: Vec<TaskId> = plan.order.clone();
        let schedule =
            Schedule::new(spec.instance(), order_ids, plan.checkpoint_after.clone()).unwrap();
        let segments = schedule.to_segments(spec.instance()).unwrap();

        for offset in 0..4u64 {
            let s = stream_seed.wrapping_add(offset);
            let mut fixed_stream = ExponentialStream::new(rate, s);
            let fixed = simulate(&segments, spec.downtime(), &mut fixed_stream).unwrap();

            let mut policy_stream = ExponentialStream::new(rate, s);
            let mut policy = DagStaticPlan::from_plan(&plan);
            let online = simulate_dag_policy(
                spec.tasks(),
                &plan.order_indices(),
                spec.initial_recovery(),
                spec.downtime(),
                &mut policy,
                &mut policy_stream,
            )
            .unwrap();

            prop_assert_eq!(fixed.failures, online.record.failures);
            prop_assert!(
                (fixed.makespan - online.record.makespan).abs() < 1e-9,
                "seed {}: fixed {} vs online {}", s, fixed.makespan, online.record.makespan
            );
            prop_assert!((fixed.breakdown.useful - online.record.breakdown.useful).abs() < 1e-9);
            prop_assert!((fixed.breakdown.lost - online.record.breakdown.lost).abs() < 1e-9);
            prop_assert!(
                (fixed.breakdown.recovery - online.record.breakdown.recovery).abs() < 1e-9
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite property 3: the full DAG policy comparison (all four
    /// rows, re-linearisation included) is bit-identical at 1 vs 2/3/8
    /// worker threads. Runs in the `--release` CI pass only: each case is
    /// 4 policies × 4 thread counts × 48 Monte-Carlo trials with order
    /// searches inside, far too slow under a debug build.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "DAG Monte-Carlo: run with --release (see CI)")]
    fn prop_dag_comparison_is_thread_count_invariant(seed in any::<u64>()) {
        let spec = layered_spec(seed);
        let planning = 1.0 / 20_000.0;
        let truth = TruthModel::Exponential { lambda: 1.0 / 4_000.0 };
        let base = EvaluationConfig { trials: 48, seed, threads: 1 };
        let search = quick_search();
        let single = compare_dag_policies(&spec, planning, &truth, &base, &search).unwrap();
        for threads in [2usize, 3, 8] {
            let config = EvaluationConfig { threads, ..base };
            let multi = compare_dag_policies(&spec, planning, &truth, &config, &search).unwrap();
            prop_assert_eq!(&single, &multi);
        }
    }
}

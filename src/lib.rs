//! `ckpt-workflows` — checkpoint scheduling for computational workflows under
//! Exponential failures.
//!
//! This is the facade crate of the workspace reproducing INRIA RR-7907 /
//! DSN 2012, *"On the complexity of scheduling checkpoints for computational
//! workflows"* (Robert, Vivien, Zaidouni). It re-exports the public API of the
//! underlying crates so applications can depend on a single crate:
//!
//! * [`dag`] — task-graph substrate (DAG container, generators, topological
//!   orders, linearisation strategies);
//! * [`failure`] — failure laws (Exponential, Weibull, log-normal), platform
//!   superposition, synthetic failure traces, deterministic RNG;
//! * [`expectation`] — Proposition 1 closed form, Young/Daly approximations,
//!   workload and overhead scaling models;
//! * [`simulator`] — discrete-event Monte-Carlo simulator of checkpointed
//!   executions;
//! * [`core`] — the scheduling layer: problem instances, schedules, the
//!   Algorithm 1 chain DP, brute-force baselines, heuristics, the
//!   Proposition 2 NP-hardness reduction, and the §6 extensions;
//! * [`adaptive`] — online checkpoint policies that observe failures during
//!   execution and re-plan the remaining chain mid-run, plus the harness
//!   comparing them under misspecified failure models;
//! * [`cluster`] — the multi-machine execution tier: a deterministic
//!   event-driven engine running many chain jobs on a machine pool under
//!   correlated failures, with policies choosing between restart, migration
//!   and hot-replica failover, and a paired-trial Monte-Carlo harness;
//! * [`service`] — the planner-as-a-service tier: batched plan/re-plan
//!   serving for fleets of workflows, with a plan cache keyed by instance
//!   fingerprint × rate bucket and a bit-deterministic parallel solve
//!   phase;
//! * [`telemetry`] — the deterministic observability layer: a metrics
//!   registry (counters, gauges, log-bucketed histograms with exact shard
//!   merges), structured sim-time/wall-time event tracing with pluggable
//!   sinks, and Prometheus/JSON exposition — wired through the solver,
//!   service, cluster and adaptive tiers without perturbing bit-identical
//!   results.
//!
//! # Quickstart
//!
//! ```rust
//! use ckpt_workflows::core::{chain_dp, evaluate, ProblemInstance, Schedule};
//! use ckpt_workflows::dag::generators;
//!
//! // A 5-task pipeline with a one-hour platform MTBF.
//! let graph = generators::chain(&[600.0, 1_200.0, 300.0, 1_800.0, 900.0])?;
//! let instance = ProblemInstance::builder(graph)
//!     .uniform_checkpoint_cost(30.0)
//!     .uniform_recovery_cost(45.0)
//!     .downtime(10.0)
//!     .platform_lambda(1.0 / 3_600.0)
//!     .build()?;
//!
//! let solution = chain_dp::optimal_chain_schedule(&instance)?;
//! println!("optimal schedule: {}", solution.schedule);
//! println!("expected makespan: {:.1} s", solution.expected_makespan);
//! assert!(solution.expected_makespan > instance.total_weight());
//!
//! // The optimum is no worse than checkpointing after every task.
//! let everywhere =
//!     Schedule::checkpoint_everywhere(&instance, solution.schedule.order().to_vec())?;
//! assert!(solution.expected_makespan
//!     <= evaluate::expected_makespan(&instance, &everywhere)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ckpt_adaptive as adaptive;
pub use ckpt_cluster as cluster;
pub use ckpt_core as core;
pub use ckpt_dag as dag;
pub use ckpt_expectation as expectation;
pub use ckpt_failure as failure;
pub use ckpt_service as service;
pub use ckpt_simulator as simulator;
pub use ckpt_telemetry as telemetry;

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! test suite vendors this minimal, dependency-free shim providing the subset
//! of the proptest API the workspace actually uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) expanding each `fn name(arg in strategy, ..) { .. }`
//!   item into a `#[test]` that runs the body over many sampled inputs;
//! * [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case with
//!   a message instead of panicking mid-sample;
//! * range strategies (`0.0f64..1.0`, `2usize..9`, ...) and [`any`] for
//!   primitive types;
//! * [`ProptestConfig::with_cases`] to control the number of cases.
//!
//! Differences from real proptest: sampling is a fixed deterministic
//! SplitMix64 stream per case index (no persisted failure file), and there is
//! **no shrinking** — a failing case reports its sampled inputs verbatim.
//! Swap this shim for the real crate when building with network access; no
//! call site needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator used for the `case`-th sample of a property.
    ///
    /// Each case gets an independent, fixed stream so failures are exactly
    /// reproducible from the printed case number.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x243F_6A88_85A3_08D3u64
                .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a property is executed: currently just the number of sampled cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error value produced by [`prop_assert!`] when a case fails.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of sampled values, implemented for ranges and [`any`].
pub trait Strategy {
    /// The type of value this strategy samples.
    type Value: fmt::Debug;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = self.end.wrapping_sub(self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_signed_range_strategy!(isize, i64, i32, i16, i8);

/// Types for which [`any`] can sample an unconstrained value.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy sampling an unconstrained value of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Fails the current property case unless the condition holds.
///
/// Expands to an early `Err` return inside the case closure, so the runner
/// can report the sampled inputs alongside the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Declares property tests.
///
/// Mirrors proptest's macro for the supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f64 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    let mut __proptest_inputs = ::std::string::String::new();
                    $(
                        __proptest_inputs.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            &$arg
                        ));
                    )*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err,
                            __proptest_inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let x = Strategy::sample(&(-5.0f64..-2.0), &mut rng);
            assert!((-5.0..-2.0).contains(&x));
            let n = Strategy::sample(&(2usize..9), &mut rng);
            assert!((2..9).contains(&n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_f64(), b.next_f64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_samples_and_asserts(
            x in 0.0f64..1.0,
            n in 1usize..10,
            seed in any::<u64>(),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x = {x} is not > 2");
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! `benches/b*.rs` targets vendor this minimal shim providing the subset of
//! the criterion API they use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], [`BenchmarkId`], benchmark groups with
//! `bench_with_input` / `bench_function` / `sample_size`, and
//! [`Bencher::iter`].
//!
//! Measurement model: each benchmark warms up once, sizes an iteration batch
//! to a fixed time budget, then runs `sample_size` batches and reports the
//! best and mean wall-clock time per iteration. Under `cargo test` (i.e. when
//! the binary is executed without the `--bench` flag cargo passes during
//! `cargo bench`) every benchmark body runs exactly once as a smoke test, so
//! bench targets stay cheap in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock time budget a full (non-smoke) benchmark spreads across its
/// samples.
const TARGET_TOTAL_TIME: Duration = Duration::from_millis(1_500);

/// An identifier `function/parameter` for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { text: text.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Runs one benchmark body; obtained inside closures passed to
/// `bench_function` / `bench_with_input`.
#[derive(Debug)]
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    report: Option<Report>,
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Report {
    best_ns_per_iter: f64,
    mean_ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measures the closure, running it in timed batches (or exactly once in
    /// smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            self.report = Some(Report { best_ns_per_iter: 0.0, mean_ns_per_iter: 0.0, iters: 1 });
            return;
        }
        // Warm-up and batch sizing: aim for `sample_size` batches within the
        // total time budget.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(30));
        let samples = self.sample_size.max(2) as u64;
        let budget_per_sample = TARGET_TOTAL_TIME.as_secs_f64() / samples as f64;
        let batch = ((budget_per_sample / once.as_secs_f64()).floor() as u64).clamp(1, 10_000_000);

        let mut best = f64::INFINITY;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            total += elapsed;
            iters += batch;
            best = best.min(elapsed.as_nanos() as f64 / batch as f64);
            if total > TARGET_TOTAL_TIME * 4 {
                break;
            }
        }
        self.report = Some(Report {
            best_ns_per_iter: best,
            mean_ns_per_iter: total.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.4} s ", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, smoke: bool, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { smoke, sample_size, report: None };
    f(&mut bencher);
    match bencher.report {
        Some(report) if !smoke => {
            println!(
                "{name:<58} best {} | mean {} | {} iters",
                format_time(report.best_ns_per_iter),
                format_time(report.mean_ns_per_iter),
                report.iters
            );
        }
        Some(_) => println!("{name:<58} smoke ok"),
        None => println!("{name:<58} (no Bencher::iter call)"),
    }
}

/// Entry point of the shimmed harness; one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    /// Full measurement under `cargo bench` (which passes `--bench`), smoke
    /// mode otherwise.
    fn default() -> Self {
        let smoke = !std::env::args().any(|arg| arg == "--bench");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 12 }
    }

    /// Benchmarks a single closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.smoke, 12, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark in the group runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Benchmarks `f` with the given input, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.text);
        run_one(&name, self.criterion.smoke, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().text);
        run_one(&name, self.criterion.smoke, self.sample_size, &mut f);
        self
    }

    /// Ends the group (accepted for API compatibility; groups need no
    /// teardown in the shim).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a group callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

/// Re-export matching criterion's historical `black_box` location.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dp", 4096).text, "dp/4096");
        assert_eq!(BenchmarkId::from("plain").text, "plain");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut count = 0u32;
        let mut bencher = Bencher { smoke: true, sample_size: 12, report: None };
        bencher.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(bencher.report.is_some());
    }

    #[test]
    fn full_mode_measures() {
        let mut bencher = Bencher { smoke: false, sample_size: 3, report: None };
        bencher.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        let report = bencher.report.expect("measured");
        assert!(report.iters >= 3);
        assert!(report.best_ns_per_iter >= 0.0);
        assert!(report.mean_ns_per_iter >= report.best_ns_per_iter * 0.5);
    }
}
